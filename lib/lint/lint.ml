(* Tolerant, line-tracking scanners. The strict parsers elsewhere in the
   repository stop at the first defect (or worse, silently normalize it
   away — strashing de-duplicates AIG nodes, the DIMACS reader auto-closes
   a trailing clause); the linter's job is to see the artifact as written
   and report every finding. *)

let split_lines text = String.split_on_char '\n' text

(* DIMACS-family token split: space, tab and carriage return are all
   separators (mirrors the tokenization contract of Dimacs/Qdimacs). *)
let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun t -> t <> "")

let by_line (d : Diag.t) =
  match d.Diag.location.Diag.line with Some l -> l | None -> max_int

let finalize diags =
  List.stable_sort (fun a b -> compare (by_line a) (by_line b)) (List.rev diags)

(* ---------- DIMACS / QDIMACS ---------- *)

let scan_cnf ?file ~qdimacs text =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let err ?line ?item code msg = add (Diag.error ?file ?line ?item ~code msg) in
  let warn ?line ?item code msg =
    add (Diag.warning ?file ?line ?item ~code msg)
  in
  let header = ref None in
  let n_clauses = ref 0 in
  let cur = ref [] in
  let cur_line = ref 0 in
  let matrix_started = ref false in
  let seen_clauses = Hashtbl.create 64 in
  let quantified = Hashtbl.create 64 in
  let first_use = Hashtbl.create 64 in
  let last_quant = ref ' ' in
  let close_clause line =
    let lits = List.rev !cur in
    cur := [];
    incr n_clauses;
    let seen_lit = Hashtbl.create 8 in
    let taut = ref false in
    List.iter
      (fun l ->
        if Hashtbl.mem seen_lit l then
          warn ~line ~item:(string_of_int l) "CNF003"
            "duplicate literal in clause"
        else begin
          Hashtbl.replace seen_lit l ();
          if Hashtbl.mem seen_lit (-l) then taut := true
        end)
      lits;
    if !taut then
      warn ~line "CNF004" "tautological clause (contains a literal and its negation)";
    let key =
      String.concat " " (List.map string_of_int (List.sort_uniq compare lits))
    in
    match Hashtbl.find_opt seen_clauses key with
    | Some first ->
        warn ~line "CNF005"
          (Printf.sprintf "duplicate of the clause at line %d" first)
    | None -> Hashtbl.replace seen_clauses key line
  in
  let handle_literal line tok =
    match int_of_string_opt tok with
    | None -> err ~line ~item:tok "CNF007" "bad token (expected an integer)"
    | Some 0 -> close_clause (if !cur = [] then line else !cur_line)
    | Some n ->
        matrix_started := true;
        if !cur = [] then cur_line := line;
        let v = abs n in
        if not (Hashtbl.mem first_use v) then Hashtbl.replace first_use v line;
        (match !header with
        | Some (nv, _, _) when v > nv ->
            err ~line ~item:(string_of_int n) "CNF001"
              (Printf.sprintf "literal references variable %d beyond header bound %d"
                 v nv)
        | Some _ | None -> ());
        cur := n :: !cur
  in
  let handle_prefix line quant rest =
    if !matrix_started then
      err ~line "QDM005" "quantifier line after the first clause";
    if !last_quant = quant then
      warn ~line "QDM004"
        (Printf.sprintf "adjacent '%c' quantifier blocks (mergeable)" quant);
    last_quant := quant;
    let count = ref 0 in
    let closed = ref false in
    List.iter
      (fun tok ->
        match int_of_string_opt tok with
        | None -> err ~line ~item:tok "CNF007" "bad token in quantifier line"
        | Some 0 -> closed := true
        | Some v when v < 0 ->
            err ~line ~item:tok "CNF007" "negative variable in quantifier line"
        | Some v ->
            incr count;
            (match Hashtbl.find_opt quantified v with
            | Some first ->
                err ~line ~item:(string_of_int v) "QDM002"
                  (Printf.sprintf "variable %d already quantified at line %d" v
                     first)
            | None -> Hashtbl.replace quantified v line))
      rest;
    ignore !closed;
    if !count = 0 then warn ~line "QDM003" "empty quantifier block"
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match tokens line with
      | [] -> ()
      | "c" :: _ -> ()
      | tok :: _ when String.length tok > 0 && tok.[0] = 'c' -> ()
      | "p" :: rest -> begin
          (if !header <> None then
             err ~line:lineno "CNF007" "duplicate 'p cnf' header");
          match rest with
          | [ "cnf"; nv; nc ] -> begin
              match (int_of_string_opt nv, int_of_string_opt nc) with
              | Some nv, Some nc ->
                  if !header = None then header := Some (nv, nc, lineno)
              | _ -> err ~line:lineno "CNF007" "malformed 'p cnf' header"
            end
          | _ -> err ~line:lineno "CNF007" "malformed 'p cnf' header"
        end
      | "e" :: rest when qdimacs -> handle_prefix lineno 'e' rest
      | "a" :: rest when qdimacs -> handle_prefix lineno 'a' rest
      | toks -> List.iter (handle_literal lineno) toks)
    (split_lines text);
  if !cur <> [] then begin
    warn ~line:!cur_line "CNF006"
      "unterminated trailing clause (no final 0); parsers auto-close it";
    close_clause !cur_line
  end;
  (match !header with
  | Some (_, nc, hline) when nc <> !n_clauses ->
      err ~line:hline "CNF002"
        (Printf.sprintf "header declares %d clauses but %d were found" nc
           !n_clauses)
  | Some _ | None -> ());
  if qdimacs then begin
    let free =
      Hashtbl.fold
        (fun v line acc ->
          if Hashtbl.mem quantified v then acc else (v, line) :: acc)
        first_use []
      |> List.sort compare
    in
    List.iter
      (fun (v, line) ->
        err ~line ~item:(string_of_int v) "QDM001"
          (Printf.sprintf "free variable %d (not bound by any quantifier block)"
             v))
      free
  end;
  finalize !diags

let check_dimacs ?file text = scan_cnf ?file ~qdimacs:false text

let check_qdimacs ?file text = scan_cnf ?file ~qdimacs:true text

(* ---------- BLIF ---------- *)

(* Logical lines: '#' comments stripped, '\' continuations glued; each
   logical line keeps the number of its first physical line. *)
let blif_logical_lines text =
  let out = ref [] in
  let pending = ref "" in
  let pending_line = ref 0 in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let line = String.trim line in
      if !pending = "" then pending_line := lineno;
      if String.length line > 0 && line.[String.length line - 1] = '\\' then
        pending := !pending ^ String.sub line 0 (String.length line - 1) ^ " "
      else begin
        let full = String.trim (!pending ^ line) in
        pending := "";
        if full <> "" then out := (!pending_line, full) :: !out
      end)
    (split_lines text);
  if String.trim !pending <> "" then
    out := (!pending_line, String.trim !pending) :: !out;
  List.rev !out

let check_blif ?file text =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let drivers = Hashtbl.create 64 in (* signal -> first driver line *)
  let decls = Hashtbl.create 64 in (* (.inputs/.outputs, name) -> line *)
  let uses = ref [] in (* (signal, line), reversed *)
  let drive lineno name =
    match Hashtbl.find_opt drivers name with
    | Some first ->
        add
          (Diag.error ?file ~line:lineno ~item:name ~code:"BLF002"
             (Printf.sprintf "signal %s is multiply driven (first driver at line %d)"
                name first))
    | None -> Hashtbl.replace drivers name lineno
  in
  let declare lineno kind name =
    match Hashtbl.find_opt decls (kind, name) with
    | Some first ->
        add
          (Diag.warning ?file ~line:lineno ~item:name ~code:"BLF003"
             (Printf.sprintf "%s declares %s again (first declared at line %d)"
                kind name first))
    | None -> Hashtbl.replace decls (kind, name) lineno
  in
  let in_names = ref false in
  List.iter
    (fun (lineno, line) ->
      match tokens line with
      | [] -> ()
      | w :: args when String.length w > 0 && w.[0] = '.' -> begin
          in_names := false;
          match (w, args) with
          | ".inputs", names ->
              List.iter
                (fun n ->
                  declare lineno ".inputs" n;
                  drive lineno n)
                names
          | ".outputs", names ->
              List.iter
                (fun n ->
                  declare lineno ".outputs" n;
                  uses := (n, lineno) :: !uses)
                names
          | ".names", [] ->
              add
                (Diag.error ?file ~line:lineno ~code:"BLF001"
                   ".names without signals")
          | ".names", signals -> begin
              in_names := true;
              match List.rev signals with
              | out :: rins ->
                  drive lineno out;
                  List.iter (fun n -> uses := (n, lineno) :: !uses) (List.rev rins)
              | [] -> assert false
            end
          | ".latch", input :: output :: _ ->
              uses := (input, lineno) :: !uses;
              drive lineno output
          | _, _ -> ()
        end
      | _ when !in_names -> () (* cover rows *)
      | _ -> ())
    (blif_logical_lines text);
  let reported = Hashtbl.create 16 in
  List.iter
    (fun (name, lineno) ->
      if (not (Hashtbl.mem drivers name)) && not (Hashtbl.mem reported name)
      then begin
        Hashtbl.replace reported name ();
        add
          (Diag.error ?file ~line:lineno ~item:name ~code:"BLF001"
             (Printf.sprintf
                "signal %s is used but never driven (no .names/.latch/.inputs)"
                name))
      end)
    (List.rev !uses);
  finalize !diags

(* ---------- ASCII AIGER ---------- *)

let check_aag ?file text =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let err lineno ?item code msg =
    add (Diag.error ?file ~line:lineno ?item ~code msg)
  in
  let lines =
    List.mapi (fun i l -> (i + 1, String.trim l)) (split_lines text)
    |> List.filter (fun (_, l) -> l <> "")
  in
  match lines with
  | [] -> [ Diag.error ?file ~code:"AAG001" "empty AIGER file" ]
  | (hline, header) :: body -> begin
      match tokens header with
      | [ "aag"; m; i; l; o; a ] -> begin
          match
            ( int_of_string_opt m,
              int_of_string_opt i,
              int_of_string_opt l,
              int_of_string_opt o,
              int_of_string_opt a )
          with
          | Some m, Some ni, Some nl, Some no, Some na ->
              if m < ni + nl + na then
                err hline "AAG001"
                  (Printf.sprintf
                     "header M=%d is smaller than I+L+A=%d" m (ni + nl + na));
              let body = Array.of_list body in
              if Array.length body < ni + nl + no + na then begin
                err hline "AAG001"
                  (Printf.sprintf
                     "truncated file: %d definition lines expected, %d present"
                     (ni + nl + no + na) (Array.length body));
                finalize !diags
              end
              else begin
                let defined = Hashtbl.create 64 in (* var -> line *)
                let define lineno lit what =
                  if lit land 1 = 1 || lit = 0 then
                    err lineno ~item:(string_of_int lit) "AAG001"
                      (Printf.sprintf
                         "%s literal must be a positive even literal" what)
                  else if lit / 2 > m then
                    err lineno ~item:(string_of_int lit) "AAG003"
                      (Printf.sprintf "literal %d exceeds header bound M=%d" lit
                         m)
                  else begin
                    match Hashtbl.find_opt defined (lit / 2) with
                    | Some first ->
                        err lineno ~item:(string_of_int lit) "AAG002"
                          (Printf.sprintf
                             "variable %d multiply defined (first defined at line %d)"
                             (lit / 2) first)
                    | None -> Hashtbl.replace defined (lit / 2) lineno
                  end
                in
                let range_ok lineno lit =
                  if lit < 0 || lit / 2 > m then begin
                    err lineno ~item:(string_of_int lit) "AAG003"
                      (Printf.sprintf "literal %d exceeds header bound M=%d" lit
                         m);
                    false
                  end
                  else true
                in
                let int_at lineno tok k =
                  match int_of_string_opt tok with
                  | Some v -> k v
                  | None ->
                      err lineno ~item:tok "AAG001"
                        "bad token (expected an integer)"
                in
                (* deferred references: resolved against the full table *)
                let deferred = ref [] in
                let defer lineno lit = deferred := (lineno, lit) :: !deferred in
                for k = 0 to ni - 1 do
                  let lineno, line = body.(k) in
                  match tokens line with
                  | [ tok ] -> int_at lineno tok (fun v -> define lineno v "input")
                  | _ -> err lineno "AAG001" "malformed input line"
                done;
                for k = 0 to nl - 1 do
                  let lineno, line = body.(ni + k) in
                  match tokens line with
                  | q :: d :: _ ->
                      int_at lineno q (fun v -> define lineno v "latch");
                      int_at lineno d (fun v ->
                          if range_ok lineno v then defer lineno v)
                  | _ -> err lineno "AAG001" "malformed latch line"
                done;
                for k = 0 to no - 1 do
                  let lineno, line = body.(ni + nl + k) in
                  match tokens line with
                  | [ tok ] ->
                      int_at lineno tok (fun v ->
                          if range_ok lineno v then defer lineno v)
                  | _ -> err lineno "AAG001" "malformed output line"
                done;
                for k = 0 to na - 1 do
                  let lineno, line = body.(ni + nl + no + k) in
                  match tokens line with
                  | [ lhs; r0; r1 ] ->
                      int_at lineno lhs (fun v -> define lineno v "AND");
                      List.iter
                        (fun tok ->
                          int_at lineno tok (fun v ->
                              if
                                range_ok lineno v
                                && v / 2 > 0
                                && not (Hashtbl.mem defined (v / 2))
                              then
                                err lineno ~item:(string_of_int v) "AAG003"
                                  (Printf.sprintf
                                     "AND fanin %d references an undefined (or forward) variable"
                                     v)))
                        [ r0; r1 ]
                  | _ -> err lineno "AAG001" "malformed AND line"
                done;
                List.iter
                  (fun (lineno, lit) ->
                    if lit / 2 > 0 && not (Hashtbl.mem defined (lit / 2)) then
                      err lineno ~item:(string_of_int lit) "AAG003"
                        (Printf.sprintf "literal %d references an undefined variable"
                           lit))
                  (List.rev !deferred);
                finalize !diags
              end
          | _ ->
              err hline "AAG001" "malformed header (non-integer counts)";
              finalize !diags
        end
      | _ ->
          err hline "AAG001" "malformed header (expected 'aag M I L O A')";
          finalize !diags
    end

(* ---------- AIG manager view ---------- *)

type aig_node = Const | Input of int | And of int * int

type aig_view = { n_nodes : int; node : int -> aig_node; roots : int list }

let check_aig ?name view =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let file = name in
  let item id = "node " ^ string_of_int id in
  let strash = Hashtbl.create 64 in
  (* pass 1: per-node structural invariants *)
  (if view.n_nodes = 0 || view.node 0 <> Const then
     add
       (Diag.error ?file ~item:"node 0" ~code:"AIG001"
          "node 0 must be the constant node"));
  for id = 1 to view.n_nodes - 1 do
    match view.node id with
    | Const ->
        add
          (Diag.error ?file ~item:(item id) ~code:"AIG001"
             "constant node at nonzero id")
    | Input _ -> ()
    | And (f0, f1) ->
        let bad_edge e =
          e < 0 || e lsr 1 >= view.n_nodes || e lsr 1 >= id
        in
        if bad_edge f0 || bad_edge f1 then
          add
            (Diag.error ?file ~item:(item id) ~code:"AIG001"
               (Printf.sprintf
                  "fanin edge out of range or non-topological (fanins %d,%d must point below node %d)"
                  f0 f1 id))
        else begin
          (if f0 lsr 1 = 0 || f1 lsr 1 = 0 then
             add
               (Diag.warning ?file ~item:(item id) ~code:"AIG004"
                  "AND with a constant fanin (missed constant folding)")
           else if f0 lsr 1 = f1 lsr 1 then
             add
               (Diag.warning ?file ~item:(item id) ~code:"AIG004"
                  (if f0 = f1 then "AND of an edge with itself (missed folding)"
                   else "AND of an edge with its complement (missed folding to false)"))
           else if f0 > f1 then
             add
               (Diag.warning ?file ~item:(item id) ~code:"AIG004"
                  "unnormalized fanin order (expected fanin0 <= fanin1)"));
          let key = if f0 <= f1 then (f0, f1) else (f1, f0) in
          match Hashtbl.find_opt strash key with
          | Some first ->
              add
                (Diag.warning ?file ~item:(item id) ~code:"AIG002"
                   (Printf.sprintf
                      "structural-hash duplicate of node %d (same fanins %d,%d)"
                      first f0 f1))
          | None -> Hashtbl.replace strash key id
        end
  done;
  (* pass 2: reachability from the roots *)
  (if view.roots <> [] then begin
     let marks = Bytes.make (max 1 view.n_nodes) '\000' in
     let stack = ref (List.map (fun e -> e lsr 1) view.roots) in
     while !stack <> [] do
       match !stack with
       | [] -> ()
       | id :: rest ->
           stack := rest;
           if id >= 0 && id < view.n_nodes && Bytes.get marks id = '\000' then begin
             Bytes.set marks id '\001';
             match view.node id with
             | And (f0, f1) ->
                 let push e =
                   let nid = e lsr 1 in
                   if nid < id then stack := nid :: !stack
                 in
                 push f0;
                 push f1
             | Const | Input _ -> ()
           end
     done;
     for id = 1 to view.n_nodes - 1 do
       match view.node id with
       | And _ when Bytes.get marks id = '\000' ->
           add
             (Diag.warning ?file ~item:(item id) ~code:"AIG003"
                "AND node unreachable from every root (dangling)")
       | _ -> ()
     done
   end);
  List.rev !diags

(* ---------- partitions ---------- *)

let check_partition ?name ~support ~xa ~xb ~xc () =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let file = name in
  let set_of l =
    let t = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace t v ()) l;
    t
  in
  let sa = set_of xa and sb = set_of xb and sc = set_of xc in
  let ssup = set_of support in
  let overlap what other tbl l =
    List.iter
      (fun v ->
        if Hashtbl.mem tbl v then
          add
            (Diag.error ?file ~item:(string_of_int v) ~code:"PAR001"
               (Printf.sprintf "variable %d is in both %s and %s" v what other)))
      (List.sort_uniq compare l)
  in
  overlap "XA" "XB" sb xa;
  overlap "XA" "XC" sc xa;
  overlap "XB" "XC" sc xb;
  List.iter
    (fun v ->
      if not (Hashtbl.mem sa v || Hashtbl.mem sb v || Hashtbl.mem sc v) then
        add
          (Diag.error ?file ~item:(string_of_int v) ~code:"PAR002"
             (Printf.sprintf "support variable %d is in none of XA/XB/XC" v)))
    (List.sort_uniq compare support);
  List.iter
    (fun (what, l) ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem ssup v) then
            add
              (Diag.error ?file ~item:(string_of_int v) ~code:"PAR002"
                 (Printf.sprintf "%s variable %d is outside the support" what v)))
        (List.sort_uniq compare l))
    [ ("XA", xa); ("XB", xb); ("XC", xc) ];
  let la = List.length (List.sort_uniq compare xa)
  and lb = List.length (List.sort_uniq compare xb) in
  if la < lb then
    add
      (Diag.warning ?file ~code:"PAR003"
         (Printf.sprintf
            "symmetry-breaking violation: |XA|=%d < |XB|=%d (canonical form wants |XA| >= |XB|)"
            la lb));
  List.rev !diags

(* ---------- DRAT / LRAT proof files ---------- *)

(* Format-level scanners for textual proof traces: tokens, terminators
   and id discipline. Semantic validity (is each clause actually RUP?)
   needs the original CNF and lives in Step_cert; these checkers share
   the PRF code family with it. *)

let check_drat ?file text =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let err ?line ?item code msg = add (Diag.error ?file ?line ?item ~code msg) in
  let saw_empty = ref false in
  let saw_line = ref false in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match tokens line with
      | [] -> ()
      | "c" :: _ -> ()
      | toks ->
          saw_line := true;
          let toks = match toks with "d" :: rest -> rest | _ -> toks in
          let rec scan n_lits closed = function
            | [] ->
                if not closed then
                  err ~line:lineno "PRF002" "clause line not 0-terminated"
                else if n_lits = 0 then saw_empty := true
            | tok :: rest -> begin
                match int_of_string_opt tok with
                | None ->
                    err ~line:lineno ~item:tok "PRF001"
                      "bad token (expected an integer)"
                | Some 0 ->
                    if closed then
                      err ~line:lineno "PRF001"
                        "tokens after the terminating 0"
                    else scan n_lits true rest
                | Some _ ->
                    if closed then
                      err ~line:lineno "PRF001"
                        "tokens after the terminating 0"
                    else scan (n_lits + 1) closed rest
              end
          in
          scan 0 false toks)
    (split_lines text);
  if not !saw_line then err "PRF002" "empty proof"
  else if not !saw_empty then
    err "PRF005" "proof has no empty-clause line (does not refute)";
  finalize !diags

let check_lrat ?file text =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let err ?line ?item code msg = add (Diag.error ?file ?line ?item ~code msg) in
  let saw_empty = ref false in
  let saw_line = ref false in
  let last_id = ref 0 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match tokens line with
      | [] -> ()
      | "c" :: _ -> ()
      | id_tok :: rest -> begin
          saw_line := true;
          match int_of_string_opt id_tok with
          | None ->
              err ~line:lineno ~item:id_tok "PRF001"
                "line must start with a clause id"
          | Some id -> begin
              match rest with
              | "d" :: del ->
                  (* deletion: ids until a final 0 *)
                  let rec scan closed = function
                    | [] ->
                        if not closed then
                          err ~line:lineno "PRF002"
                            "deletion line not 0-terminated"
                    | tok :: rest -> begin
                        match int_of_string_opt tok with
                        | None ->
                            err ~line:lineno ~item:tok "PRF001"
                              "bad token (expected an integer)"
                        | Some 0 ->
                            if closed then
                              err ~line:lineno "PRF001"
                                "tokens after the terminating 0"
                            else scan true rest
                        | Some n ->
                            if closed then
                              err ~line:lineno "PRF001"
                                "tokens after the terminating 0"
                            else if n < 0 then
                              err ~line:lineno ~item:tok "PRF001"
                                "negative clause id in deletion"
                            else scan closed rest
                      end
                  in
                  scan false del
              | _ ->
                  (* addition: id lits 0 hints 0 *)
                  if id <= !last_id then
                    err ~line:lineno ~item:id_tok "PRF003"
                      (Printf.sprintf "clause id %d not above previous id %d" id
                         !last_id)
                  else last_id := id;
                  let rec scan n_lits zeros = function
                    | [] ->
                        if zeros < 2 then
                          err ~line:lineno "PRF002"
                            "addition line needs two 0 terminators (lits, hints)"
                        else if n_lits = 0 then saw_empty := true
                    | tok :: rest -> begin
                        match int_of_string_opt tok with
                        | None ->
                            err ~line:lineno ~item:tok "PRF001"
                              "bad token (expected an integer)"
                        | Some 0 ->
                            if zeros >= 2 then
                              err ~line:lineno "PRF001"
                                "tokens after the terminating 0"
                            else scan n_lits (zeros + 1) rest
                        | Some _ ->
                            if zeros >= 2 then
                              err ~line:lineno "PRF001"
                                "tokens after the terminating 0"
                            else if zeros = 0 then scan (n_lits + 1) zeros rest
                            else scan n_lits zeros rest
                      end
                  in
                  scan 0 0 rest
            end
        end)
    (split_lines text);
  if not !saw_line then err "PRF002" "empty proof"
  else if not !saw_empty then
    err "PRF005" "proof has no empty-clause line (does not refute)";
  finalize !diags

(* ---------- file dispatch ---------- *)

type kind = Cnf | Qdimacs | Blif | Aag | Drat | Lrat

let kind_of_path path =
  let has s = Filename.check_suffix path s in
  if has ".cnf" || has ".dimacs" then Some Cnf
  else if has ".qdimacs" || has ".qdm" then Some Qdimacs
  else if has ".blif" then Some Blif
  else if has ".aag" then Some Aag
  else if has ".drat" then Some Drat
  else if has ".lrat" then Some Lrat
  else None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?kind path =
  match (match kind with Some k -> Some k | None -> kind_of_path path) with
  | None ->
      [
        Diag.error ~file:path ~code:"IO001"
          "unrecognized artifact kind (expected \
           .cnf/.dimacs/.qdimacs/.blif/.aag/.drat/.lrat)";
      ]
  | Some k -> begin
      match read_file path with
      | exception Sys_error msg ->
          [ Diag.error ~file:path ~code:"IO001" ("cannot read file: " ^ msg) ]
      | text -> begin
          match k with
          | Cnf -> check_dimacs ~file:path text
          | Qdimacs -> check_qdimacs ~file:path text
          | Blif -> check_blif ~file:path text
          | Aag -> check_aag ~file:path text
          | Drat -> check_drat ~file:path text
          | Lrat -> check_lrat ~file:path text
        end
    end
