(** Static analysis over the pipeline's artifact formats.

    The linter has its own tolerant, line-tracking scanners for the textual
    artifact formats (DIMACS CNF, QDIMACS, BLIF, ASCII AIGER): unlike the
    strict parsers in [Step_sat]/[Step_aig]/[Step_qbf], it keeps going after
    a defect and reports every finding with a stable rule code and a source
    location. In-memory structures (AIG managers, partitions) are checked
    through neutral views so this library stays below the solver stack in
    the dependency order (the CDCL sanitizer reports {!Diag.t} too).

    Rule catalogue (see docs/LINT.md for details):
    - [AIG001]–[AIG004]: AIG node-table invariants
    - [CNF001]–[CNF007]: DIMACS clause/header hygiene
    - [QDM001]–[QDM005]: QDIMACS prefix well-formedness
    - [BLF001]–[BLF003]: BLIF signal drivers
    - [AAG001]–[AAG003]: ASCII AIGER literal definitions
    - [PAR001]–[PAR003]: partition coverage and symmetry
    - [SAN001]–[SAN003]: solver sanitizer (emitted by [Step_sat.Solver])
    - [PRF001]–[PRF007]: DRAT/LRAT proof traces and certificates
      (format-level rules here; the semantic rules PRF004/PRF006/PRF007
      are emitted by the independent checker in [Step_cert])
    - [IO001]: unreadable / unrecognized artifact *)

(** {2 Textual artifacts} *)

val check_dimacs : ?file:string -> string -> Diag.t list
(** Lints DIMACS CNF text: variables beyond the [p cnf] header bound
    (CNF001), header clause-count mismatch (CNF002), duplicate literals
    (CNF003), tautological clauses (CNF004), duplicate clauses (CNF005),
    an unterminated trailing clause (CNF006), and syntax defects the
    strict parser would reject (CNF007). *)

val check_qdimacs : ?file:string -> string -> Diag.t list
(** Lints QDIMACS text: all the CNF rules on the matrix, plus free
    variables (QDM001), variables quantified twice (QDM002), empty
    quantifier blocks (QDM003), adjacent same-quantifier blocks (QDM004)
    and quantifier lines after the matrix started (QDM005). *)

val check_blif : ?file:string -> string -> Diag.t list
(** Lints BLIF text: undriven signals (BLF001), multiply-driven signals
    (BLF002), duplicate [.inputs]/[.outputs] declarations (BLF003). *)

val check_aag : ?file:string -> string -> Diag.t list
(** Lints ASCII AIGER text: malformed/truncated header or body (AAG001),
    multiply-defined variables (AAG002), references to undefined or
    out-of-range literals (AAG003). *)

val check_drat : ?file:string -> string -> Diag.t list
(** Lints textual DRAT proof traces, format level only: non-integer
    tokens or tokens after the terminating 0 (PRF001), lines without a 0
    terminator or an entirely empty proof (PRF002), and a proof that
    never adds the empty clause (PRF005). Whether each clause is actually
    RUP needs the original CNF — that semantic check lives in
    [Step_cert.Cert]. *)

val check_lrat : ?file:string -> string -> Diag.t list
(** Same for textual LRAT ([id lit* 0 hint* 0] additions, [id d id* 0]
    deletions): PRF001/PRF002 as for DRAT, plus non-increasing addition
    ids (PRF003). *)

(** {2 In-memory artifacts} *)

type aig_node =
  | Const
  | Input of int  (** input index *)
  | And of int * int  (** fanin edges, [2 * id + complement] *)

type aig_view = {
  n_nodes : int;
  node : int -> aig_node;
  roots : int list;  (** Root edges; [[]] disables the reachability check. *)
}
(** A structure-only view of an AIG manager. [Step_aig.Aig.node_kind]
    provides the [node] function; building the view at the call site keeps
    this library independent of the AIG package. *)

val check_aig : ?name:string -> aig_view -> Diag.t list
(** Checks acyclicity/topological fanin order and edge ranges (AIG001),
    structural-hash duplicates (AIG002), AND nodes unreachable from the
    roots (AIG003), and missed constant folding or unnormalized fanin
    order (AIG004). [name] labels the artifact in locations. *)

val check_partition :
  ?name:string ->
  support:int list ->
  xa:int list -> xb:int list -> xc:int list ->
  unit -> Diag.t list
(** Checks XA/XB/XC pairwise disjointness (PAR001), exact coverage of
    [support] (PAR002), and the paper's symmetry normalization
    [|XA| >= |XB|] (PAR003, warning). *)

(** {2 File dispatch} *)

type kind = Cnf | Qdimacs | Blif | Aag | Drat | Lrat

val kind_of_path : string -> kind option
(** [.cnf]/[.dimacs], [.qdimacs]/[.qdm], [.blif], [.aag], [.drat],
    [.lrat]. Binary [.aig] is handled by the CLI (it needs the AIG
    reader). *)

val lint_file : ?kind:kind -> string -> Diag.t list
(** Reads and lints one artifact file, dispatching on the extension unless
    [kind] forces one. Unreadable files and unknown extensions yield a
    single IO001 error rather than an exception. *)
