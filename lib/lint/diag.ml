module Json = Step_obs.Json

type severity = Error | Warning | Info

type location = { file : string option; line : int option; item : string option }

type t = {
  code : string;
  severity : severity;
  location : location;
  message : string;
}

let no_location = { file = None; line = None; item = None }

let make ?file ?line ?item ~code ~severity message =
  { code; severity; location = { file; line; item }; message }

let error ?file ?line ?item ~code message =
  make ?file ?line ?item ~code ~severity:Error message

let warning ?file ?line ?item ~code message =
  make ?file ?line ?item ~code ~severity:Warning message

let info ?file ?line ?item ~code message =
  make ?file ?line ?item ~code ~severity:Info message

let with_file file d = { d with location = { d.location with file = Some file } }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_severity a b = compare (severity_rank a) (severity_rank b)

let count_severity sev ds =
  List.length (List.filter (fun d -> d.severity = sev) ds)

let count_errors ds = count_severity Error ds

let count_warnings ds = count_severity Warning ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let to_text d =
  let buf = Buffer.create 64 in
  (match d.location.file with
  | Some f ->
      Buffer.add_string buf f;
      (match d.location.line with
      | Some l -> Buffer.add_string buf (Printf.sprintf ":%d" l)
      | None -> ());
      Buffer.add_string buf ": "
  | None -> (
      match d.location.line with
      | Some l -> Buffer.add_string buf (Printf.sprintf "line %d: " l)
      | None -> ()));
  Buffer.add_string buf (severity_to_string d.severity);
  Buffer.add_string buf (Printf.sprintf " %s: %s" d.code d.message);
  (match d.location.item with
  | Some item -> Buffer.add_string buf (Printf.sprintf " [%s]" item)
  | None -> ());
  Buffer.contents buf

let render ds = String.concat "" (List.map (fun d -> to_text d ^ "\n") ds)

let summary ds =
  if ds = [] then "clean"
  else begin
    let plural n what =
      Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")
    in
    let parts =
      List.filter_map
        (fun (sev, what) ->
          match count_severity sev ds with
          | 0 -> None
          | n -> Some (plural n what))
        [ (Error, "error"); (Warning, "warning"); (Info, "info") ]
    in
    String.concat ", " parts
  end

let to_json d =
  let base =
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_to_string d.severity));
      ("message", Json.String d.message);
    ]
  in
  let opt key f = function Some v -> [ (key, f v) ] | None -> [] in
  Json.Obj
    (base
    @ opt "file" (fun s -> Json.String s) d.location.file
    @ opt "line" (fun l -> Json.Int l) d.location.line
    @ opt "item" (fun s -> Json.String s) d.location.item)

let list_to_json ds = Json.List (List.map to_json ds)
