(* Quickstart: build a function, find its optimum-disjointness OR
   bi-decomposition with the QBF model, extract fA/fB and verify.

   Run with: dune exec examples/quickstart.exe *)

module Aig = Step_aig.Aig
module Gate = Step_core.Gate
module Partition = Step_core.Partition
module Problem = Step_core.Problem
module Qbf_model = Step_core.Qbf_model
module Extract = Step_core.Extract
module Verify = Step_core.Verify

let () =
  (* f(x0..x5) = (x0 & x1 & x4) | (x2 ^ x3) | (x4 & x5) *)
  let m = Aig.create () in
  let x = Array.init 6 (fun i -> Aig.fresh_input ~name:(Printf.sprintf "x%d" i) m) in
  let f =
    Aig.or_list m
      [
        Aig.and_list m [ x.(0); x.(1); x.(4) ];
        Aig.xor_ m x.(2) x.(3);
        Aig.and_ m x.(4) x.(5);
      ]
  in
  let problem = Problem.of_edge m f in
  Printf.printf "f has %d support variables\n" (Problem.n_vars problem);

  (* Optimum-disjointness OR bi-decomposition (STEP-QD) *)
  let outcome = Qbf_model.optimize problem Gate.Or_gate Qbf_model.Disjointness in
  match outcome.Qbf_model.partition with
  | None -> print_endline "f is not OR bi-decomposable"
  | Some part ->
      Printf.printf "partition: %s\n" (Partition.to_string part);
      Printf.printf "disjointness eD = %.3f (optimal: %b)\n"
        (Partition.disjointness part) outcome.Qbf_model.optimal;
      (* derive fA, fB and verify f = fA | fB *)
      let r = Extract.run problem Gate.Or_gate part in
      Printf.printf "fA cone: %d AND nodes over inputs %s\n"
        (Aig.cone_size m r.Extract.fa)
        (String.concat "," (List.map string_of_int (Aig.support m r.Extract.fa)));
      Printf.printf "fB cone: %d AND nodes over inputs %s\n"
        (Aig.cone_size m r.Extract.fb)
        (String.concat "," (List.map string_of_int (Aig.support m r.Extract.fb)));
      Printf.printf "verified f = fA OR fB: %b\n"
        (Verify.decomposition problem Gate.Or_gate part ~fa:r.Extract.fa
           ~fb:r.Extract.fb)
