(* Recursive bi-decomposition: drive a complex function all the way down
   to a tree of two-input gates over small leaf functions — the
   multi-level synthesis use the paper's introduction motivates — and
   compare the trees produced by heuristic (STEP-MG) and optimum
   (STEP-QD / STEP-QB) partitioning.

   Run with: dune exec examples/recursive_synthesis.exe *)

module Aig = Step_aig.Aig
module Gate = Step_core.Gate
module Problem = Step_core.Problem
module Pipeline = Step_engine.Pipeline
module Recursive = Step_core.Recursive
module Verify = Step_core.Verify

let () =
  (* a 12-input function with layered structure *)
  let m = Aig.create () in
  let x = Array.init 12 (fun i -> Aig.fresh_input ~name:(Printf.sprintf "x%d" i) m) in
  let block a b c = Aig.or_ m (Aig.and_ m x.(a) x.(b)) (Aig.xor_ m x.(b) x.(c)) in
  let f =
    Aig.xor_ m
      (Aig.or_ m (block 0 1 2) (block 3 4 5))
      (Aig.and_ m (block 6 7 8) (block 9 10 11))
  in
  let p = Problem.of_edge m f in
  Printf.printf "function over %d inputs, %d AND nodes\n\n" (Problem.n_vars p)
    (Aig.cone_size m f);

  List.iter
    (fun (label, method_) ->
      let config =
        { Recursive.default_config with Recursive.method_; stop_support = 3 }
      in
      let t0 = Unix.gettimeofday () in
      let tree = Recursive.decompose ~config p in
      let cpu = Unix.gettimeofday () -. t0 in
      let s = Recursive.stats_of m tree in
      let rebuilt = Recursive.rebuild m tree in
      let ok = Verify.equivalent p Gate.Or_gate ~fa:rebuilt ~fb:Aig.f in
      (* f ≡ rebuilt ∨ 0 ⟺ f ≡ rebuilt *)
      Printf.printf
        "%-8s gates=%d leaves=%d depth=%d max-leaf-support=%d \
         total-leaf-support=%d  %.2fs  equivalent=%b\n"
        label s.Recursive.gates s.Recursive.leaves s.Recursive.depth
        s.Recursive.max_leaf_support s.Recursive.total_leaf_support cpu ok)
    [
      ("MG", Pipeline.Mg);
      ("QD", Pipeline.Qd);
      ("QB", Pipeline.Qb);
    ];

  (* show one tree *)
  let tree =
    Recursive.decompose
      ~config:{ Recursive.default_config with Recursive.stop_support = 3 }
      p
  in
  Format.printf "\ndecomposition tree (STEP-QD):\n%a"
    (fun fmt -> Recursive.pp m fmt)
    tree
