(* Partition quality on a function with many valid partitions: shows how
   the three QBF targets (disjointness, balancedness, combined cost) steer
   the optimum, and that each is provably optimal vs exhaustive search.

   Run with: dune exec examples/partition_quality.exe *)

module Aig = Step_aig.Aig
module Gate = Step_core.Gate
module Partition = Step_core.Partition
module Problem = Step_core.Problem
module Qbf_model = Step_core.Qbf_model
module Exhaustive = Step_core.Exhaustive
module Mg = Step_core.Mg

let describe label (part : Partition.t option) =
  match part with
  | None -> Printf.printf "%-14s (none)\n" label
  | Some p ->
      Printf.printf "%-14s |XA|=%d |XB|=%d |XC|=%d  eD=%.3f eB=%.3f cost=%.3f\n"
        label
        (List.length p.Partition.xa)
        (List.length p.Partition.xb)
        (List.length p.Partition.xc)
        (Partition.disjointness p) (Partition.balancedness p)
        (Partition.cost p)

let () =
  (* f = (x0&x1) | (x2&x3&x6) | (x4&x5&x6): three OR blocks, one shared
     variable; many valid partitions with different trade-offs *)
  let m = Aig.create () in
  let x = Array.init 7 (fun i -> Aig.fresh_input ~name:(Printf.sprintf "x%d" i) m) in
  let f =
    Aig.or_list m
      [
        Aig.and_ m x.(0) x.(1);
        Aig.and_list m [ x.(2); x.(3); x.(6) ];
        Aig.and_list m [ x.(4); x.(5); x.(6) ];
      ]
  in
  let p = Problem.of_edge m f in

  (* heuristic baseline *)
  describe "STEP-MG" (Mg.find p Gate.Or_gate).Mg.partition;

  (* the three QBF targets *)
  List.iter
    (fun (label, target) ->
      let o = Qbf_model.optimize p Gate.Or_gate target in
      describe label o.Qbf_model.partition;
      Printf.printf "               (optimal=%b, %d refinements, %d queries)\n"
        o.Qbf_model.optimal o.Qbf_model.refinements o.Qbf_model.qbf_queries)
    [
      ("STEP-QD", Qbf_model.Disjointness);
      ("STEP-QB", Qbf_model.Balancedness);
      ("STEP-QDB", Qbf_model.Combined);
    ];

  (* cross-check against exhaustive enumeration of all partitions *)
  print_endline "\nexhaustive ground truth:";
  describe "best eD" (Exhaustive.best ~objective:Partition.disjointness_k p Gate.Or_gate);
  describe "best eB" (Exhaustive.best ~objective:Partition.balancedness_k p Gate.Or_gate);
  describe "best cost"
    (Exhaustive.best
       ~objective:(fun q -> Partition.combined_k (Partition.canonical q))
       p Gate.Or_gate)
