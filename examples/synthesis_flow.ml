(* A mini logic-synthesis flow, the scenario motivating the paper:
   load/generate a multi-output circuit, bi-decompose every output with
   both the heuristic (STEP-MG) and the optimum QBF model (STEP-QD),
   rebuild the network from the extracted fA/fB pairs, and compare shared
   inputs before/after.

   Run with: dune exec examples/synthesis_flow.exe *)

module Aig = Step_aig.Aig
module Circuit = Step_aig.Circuit
module Blif = Step_aig.Blif
module Gate = Step_core.Gate
module Partition = Step_core.Partition
module Problem = Step_core.Problem
module Pipeline = Step_engine.Pipeline
module Extract = Step_core.Extract
module Verify = Step_core.Verify

let () =
  (* an ALU-like block from the generator library *)
  let circuit = Step_circuits.Generators.alu 3 in
  Printf.printf "input circuit: %s\n" (Circuit.stats circuit);

  let decompose method_ =
    let r = Pipeline.run ~per_po_budget:5.0 circuit Gate.Or_gate method_ in
    Printf.printf "\n== %s: decomposed %d/%d outputs in %.2fs\n"
      (Pipeline.method_name method_)
      r.Pipeline.n_decomposed
      (Array.length r.Pipeline.per_po)
      r.Pipeline.total_cpu;
    r
  in
  let mg = decompose Pipeline.Mg in
  let qd = decompose Pipeline.Qd in

  (* compare the shared-variable counts (the area/power proxy the paper
     optimizes) on outputs both methods decomposed *)
  Array.iteri
    (fun i mg_po ->
      let qd_po = qd.Pipeline.per_po.(i) in
      match (mg_po.Pipeline.partition, qd_po.Pipeline.partition) with
      | Some mp, Some qp ->
          Printf.printf "%-8s |XC| mg=%d qd=%d%s\n" mg_po.Pipeline.po_name
            (List.length mp.Partition.xc)
            (List.length qp.Partition.xc)
            (if
               List.length qp.Partition.xc < List.length mp.Partition.xc
             then "  <- improved"
             else "")
      | _, _ -> ())
    mg.Pipeline.per_po;

  (* rebuild each decomposed output as an OR of its extracted halves and
     emit the result as BLIF *)
  let rebuilt =
    Array.to_list qd.Pipeline.per_po
    |> List.filter_map (fun (po : Pipeline.po_result) ->
           match po.Pipeline.partition with
           | None -> None
           | Some part ->
               let f = Circuit.find_output circuit po.Pipeline.po_name in
               let p = Problem.of_edge circuit.Circuit.aig f in
               let e = Extract.run p Gate.Or_gate part in
               assert (
                 Verify.decomposition p Gate.Or_gate part ~fa:e.Extract.fa
                   ~fb:e.Extract.fb);
               Some
                 [
                   (po.Pipeline.po_name ^ "$a", e.Extract.fa);
                   (po.Pipeline.po_name ^ "$b", e.Extract.fb);
                 ])
    |> List.concat
  in
  let out = Circuit.make ~name:"alu3_decomposed" circuit.Circuit.aig rebuilt in
  let path = Filename.temp_file "step_flow" ".blif" in
  Blif.write_file path out;
  Printf.printf "\nwrote decomposed halves of %d outputs to %s\n"
    (List.length rebuilt / 2) path
