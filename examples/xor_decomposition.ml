(* XOR bi-decomposition on arithmetic: the sum bits of an adder are
   XOR-decomposable (s_i = a_i ⊕ b_i ⊕ c_i), which OR/AND decomposition
   cannot capture. Demonstrates gate selection across all three gates.

   Run with: dune exec examples/xor_decomposition.exe *)

module Aig = Step_aig.Aig
module Circuit = Step_aig.Circuit
module Gate = Step_core.Gate
module Partition = Step_core.Partition
module Problem = Step_core.Problem
module Qbf_model = Step_core.Qbf_model
module Extract = Step_core.Extract
module Verify = Step_core.Verify

let () =
  let adder = Step_circuits.Generators.ripple_adder 3 in
  Printf.printf "circuit: %s\n\n" (Circuit.stats adder);
  let n_out = Circuit.n_outputs adder in
  for i = 0 to n_out - 1 do
    let name = Circuit.output_name adder i in
    let p = Problem.of_output adder i in
    if Problem.n_vars p >= 2 then begin
      Printf.printf "%-6s (support %d):" name (Problem.n_vars p);
      List.iter
        (fun gate ->
          let o = Qbf_model.optimize p gate Qbf_model.Disjointness in
          match o.Qbf_model.partition with
          | None -> Printf.printf "  %s: -" (Gate.to_string gate)
          | Some part ->
              Printf.printf "  %s: eD=%.2f" (Gate.to_string gate)
                (Partition.disjointness part))
        Gate.all;
      print_newline ()
    end
  done;

  (* decompose the top sum bit with XOR and show the halves *)
  let p = Problem.of_edge adder.Circuit.aig (Circuit.find_output adder "s2") in
  match
    (Qbf_model.optimize p Gate.Xor_gate Qbf_model.Disjointness).Qbf_model.partition
  with
  | None -> print_endline "\ns2 unexpectedly not XOR-decomposable"
  | Some part ->
      Printf.printf "\ns2 XOR partition: %s\n" (Partition.to_string part);
      let e = Extract.run p Gate.Xor_gate part in
      let aig = adder.Circuit.aig in
      Printf.printf "fA: %d AND nodes over {%s}\n"
        (Aig.cone_size aig e.Extract.fa)
        (String.concat ","
           (List.map (Aig.input_name aig) (Aig.support aig e.Extract.fa)));
      Printf.printf "fB: %d AND nodes over {%s}\n"
        (Aig.cone_size aig e.Extract.fb)
        (String.concat ","
           (List.map (Aig.input_name aig) (Aig.support aig e.Extract.fb)));
      Printf.printf "verified: %b\n"
        (Verify.decomposition p Gate.Xor_gate part ~fa:e.Extract.fa
           ~fb:e.Extract.fb)
