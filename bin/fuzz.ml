(* step-fuzz — randomized differential testing across the whole stack.

   Each round draws a random function and partition, then cross-checks
   every implementation path against the others:

     - Prop.1 SAT check vs truth-table reference vs BDD baseline
     - STEP-MG / LJH partitions validity (and QBF optimum <= both)
     - both extraction engines, SAT-verified
     - the QDIMACS export solved back through the CEGAR engine

   With [--proofs] the rounds instead target the certification chain:
   random small CNFs go through a proof-logging solver, UNSAT answers
   must yield DRAT and LRAT refutations that the independent checker
   accepts (and rejects once corrupted), SAT answers must yield models
   that satisfy every input clause. Some rounds force a learned-clause
   database reduction mid-solve so deletion lines are exercised.

   Exit code 0 when every round agrees; 1 with a reproducer seed printed
   otherwise. Usage:

     dune exec bin/fuzz.exe -- [--rounds N] [--seed S] [--vars V] [--proofs]
*)

module Aig = Step_aig.Aig
module Gate = Step_core.Gate
module Partition = Step_core.Partition
module Problem = Step_core.Problem
module Check = Step_core.Check
module Mg = Step_core.Mg
module Ljh = Step_core.Ljh
module Qbf_model = Step_core.Qbf_model
module Extract = Step_core.Extract
module Verify = Step_core.Verify
module Solver = Step_sat.Solver
module Lit = Step_sat.Lit
module Drat = Step_sat.Drat
module Lrat = Step_sat.Lrat
module Cert = Step_cert.Cert
module Diag = Step_lint.Diag

let rounds = ref 200
let seed = ref 1
let n_vars = ref 5
let proofs = ref false

let failures = ref 0

let fail round what =
  incr failures;
  Printf.printf "FAIL round=%d seed=%d: %s\n%!" round !seed what

(* random function over exactly [n] inputs *)
let random_problem st n =
  let m = Aig.create () in
  let inputs = Array.init n (fun _ -> Aig.fresh_input m) in
  let rec expr depth =
    if depth = 0 || Random.State.int st 4 = 0 then begin
      let v = inputs.(Random.State.int st n) in
      if Random.State.bool st then v else Aig.not_ v
    end
    else begin
      let a = expr (depth - 1) and b = expr (depth - 1) in
      match Random.State.int st 3 with
      | 0 -> Aig.and_ m a b
      | 1 -> Aig.or_ m a b
      | _ -> Aig.xor_ m a b
    end
  in
  Problem.of_edge m (expr (2 + Random.State.int st 3))

let random_partition st support =
  let xa = ref [] and xb = ref [] and xc = ref [] in
  List.iter
    (fun v ->
      match Random.State.int st 3 with
      | 0 -> xa := v :: !xa
      | 1 -> xb := v :: !xb
      | _ -> xc := v :: !xc)
    support;
  (* patch trivial assignments *)
  (match (!xa, !xb, !xc) with
  | [], _, c :: rest ->
      xa := [ c ];
      xc := rest
  | [], b :: rest, [] ->
      xa := [ b ];
      xb := rest
  | _ -> ());
  (match (!xb, !xc) with
  | [], c :: rest ->
      xb := [ c ];
      xc := rest
  | [], [] -> begin
      match !xa with
      | a :: rest when rest <> [] ->
          xb := [ a ];
          xa := rest
      | _ -> ()
    end
  | _ -> ());
  if !xa = [] || !xb = [] then None
  else Some (Partition.make ~xa:!xa ~xb:!xb ~xc:!xc)

let gate_of st =
  match Random.State.int st 3 with
  | 0 -> Gate.Or_gate
  | 1 -> Gate.And_gate
  | _ -> Gate.Xor_gate

let round_check round st =
  let p = random_problem st !n_vars in
  if List.length p.Problem.support >= 2 then begin
    let g = gate_of st in
    (* 1. three-way decomposability agreement on a random partition *)
    (match random_partition st p.Problem.support with
    | None -> ()
    | Some part ->
        let sat = Check.decomposable p g part in
        let sem = Check.decomposable_semantic p g part in
        if sat <> Some sem then
          fail round
            (Printf.sprintf "SAT=%s vs semantic=%b for %s %s"
               (match sat with
               | Some b -> string_of_bool b
               | None -> "timeout")
               sem (Gate.to_string g) (Partition.to_string part));
        (match Step_bdd.Bidec.decomposable p g part with
        | Some b when Some b <> sat ->
            fail round "BDD check disagrees with SAT check"
        | Some _ | None -> ());
        (* 2. extraction engines on decomposable partitions *)
        if sat = Some true then
          List.iter
            (fun engine ->
              match Extract.run ~engine p g part with
              | e ->
                  if
                    not
                      (Verify.decomposition p g part ~fa:e.Extract.fa
                         ~fb:e.Extract.fb)
                  then fail round "extraction failed verification"
              | exception Aig.Blowup -> ())
            [ Extract.Quantify; Extract.Interpolate ]);
    (* 3. method consistency: QBF optimum <= MG; every answer valid *)
    let mg = (Mg.find p g).Mg.partition in
    let lj = (Ljh.find p g).Ljh.partition in
    let qd = Qbf_model.optimize p g Qbf_model.Disjointness in
    (match (mg, qd.Qbf_model.partition) with
    | Some m, Some q ->
        if Partition.disjointness_k q > Partition.disjointness_k m then
          fail round "QD worse than MG"
    | Some _, None -> fail round "MG decomposed but QD did not"
    | None, Some _ ->
        () (* possible: MG's seed heuristic can miss within its cap *)
    | None, None -> ());
    List.iter
      (fun (label, part) ->
        match part with
        | None -> ()
        | Some part ->
            if Check.decomposable p g part <> Some true then
              fail round (label ^ " returned an invalid partition"))
      [ ("MG", mg); ("LJH", lj); ("QD", qd.Qbf_model.partition) ]
  end

(* --proofs mode: fuzz the proof-logging solver against the independent
   certificate checker. Clauses are plain DIMACS ints end to end. *)

let random_cnf st n =
  let n_clauses = 3 + Random.State.int st (4 * n) in
  List.init n_clauses (fun _ ->
      let len = 1 + Random.State.int st 3 in
      List.init len (fun _ ->
          let v = 1 + Random.State.int st n in
          if Random.State.bool st then v else -v))

(* Corrupt an LRAT/DRAT text so the checker must reject it: truncating
   loses the final empty clause at minimum. *)
let truncate_proof proof = String.sub proof 0 (String.length proof / 2)

let proof_round round st =
  let n = !n_vars in
  let cnf = random_cnf st n in
  let solver = Solver.create ~proof:true () in
  Solver.ensure_var solver (n - 1);
  List.iter
    (fun c -> ignore (Solver.add_clause solver (List.map Lit.of_dimacs c)))
    cnf;
  (* On a third of the rounds, solve under an assumption first and force
     a learned-clause DB reduction, so exported proofs carry deletion
     lines that the checkers must replay. *)
  if Random.State.int st 3 = 0 then begin
    let a = Lit.of_dimacs (1 + Random.State.int st n) in
    ignore (Solver.solve ~assumptions:[ a ] solver);
    Solver.reduce_learnts solver
  end;
  if Solver.solve solver then begin
    let model =
      (* solver var [i] is DIMACS var [i + 1] *)
      List.init n (fun i ->
          if Solver.var_value solver i then i + 1 else -(i + 1))
    in
    let live = Lrat.input_cnf solver in
    if
      Diag.has_errors
        (Cert.check_model ~item:"fuzz-sat" ~cnf:live ~model ())
    then fail round "SAT model fails the clause check"
  end
  else begin
    (* DRAT trace through the RUP checker *)
    let trace = Drat.export solver in
    let live = Lrat.input_cnf solver in
    let lits = List.map (List.map Lit.of_dimacs) live in
    if not (Drat.check ~cnf:lits ~trace) then
      fail round "DRAT trace rejected by the RUP checker";
    (* textual DRAT through the independent checker *)
    let drat_text = Drat.export_string solver in
    if
      Diag.has_errors
        (Cert.check_drat ~item:"fuzz-drat" ~n_vars:(Solver.n_vars solver)
           ~cnf:live ~proof:drat_text ())
    then fail round "textual DRAT rejected by the certificate checker";
    (* LRAT export through the hint-directed checker *)
    let e = Lrat.export solver in
    if
      Diag.has_errors
        (Cert.check_lrat ~item:"fuzz-lrat" ~n_vars:e.Lrat.n_vars
           ~cnf:e.Lrat.cnf ~proof:e.Lrat.proof ())
    then fail round "LRAT proof rejected by the certificate checker";
    (* and a corrupted proof must NOT be accepted *)
    if String.length e.Lrat.proof > 4 then begin
      let bad = truncate_proof e.Lrat.proof in
      if
        not
          (Diag.has_errors
             (Cert.check_lrat ~item:"fuzz-corrupt" ~n_vars:e.Lrat.n_vars
                ~cnf:e.Lrat.cnf ~proof:bad ()))
      then fail round "corrupted LRAT proof accepted"
    end
  end

(* --arena mode: differential fuzzing of the arena-based solver paths.
   Every round solves the same random CNF four ways — inprocessing off
   (reference), inprocessing + forced compaction, Simp-preprocessed with
   model reconstruction, and proof-logging with a forced DB reduction and
   compaction — and demands identical verdicts, satisfying models, clean
   invariant audits, and LRAT/DRAT certificates that still check after
   the arena has moved every clause. *)

module Simp = Step_sat.Simp
module Dimacs = Step_sat.Dimacs

let eval_dimacs cnf value =
  List.for_all
    (List.exists (fun l -> if l > 0 then value l else not (value (-l))))
    cnf

let arena_round round st =
  let n = !n_vars in
  let cnf = random_cnf st n in
  let mk ?proof () =
    let s = Solver.create ?proof () in
    Solver.ensure_var s (n - 1);
    List.iter
      (fun c -> ignore (Solver.add_clause s (List.map Lit.of_dimacs c)))
      cnf;
    s
  in
  let check_model label s =
    if not (eval_dimacs cnf (fun v -> Solver.var_value s (v - 1))) then
      fail round (label ^ " model does not satisfy the input CNF")
  in
  let check_audit label s =
    match Solver.audit s with
    | [] -> ()
    | d :: _ -> fail round (label ^ " audit: " ^ Diag.to_text d)
  in
  (* reference: arena solver with inprocessing disabled *)
  let base = mk () in
  Solver.set_inprocessing base false;
  let r0 = Solver.solve base in
  if r0 then check_model "reference" base;
  check_audit "reference" base;
  (* forced inprocessing + compaction before the solve *)
  let s1 = mk () in
  Solver.inprocess s1;
  Solver.compact s1;
  check_audit "inprocessed" s1;
  let r1 = Solver.solve s1 in
  if r1 <> r0 then
    fail round
      (Printf.sprintf "inprocessed verdict %b disagrees with reference %b" r1
         r0);
  if r1 then check_model "inprocessed" s1;
  check_audit "inprocessed post-solve" s1;
  (* Simp preprocessing + model reconstruction *)
  let dcnf =
    {
      Dimacs.num_vars = n;
      clauses = List.map (List.map Lit.of_dimacs) cnf;
    }
  in
  let simp = Simp.eliminate ~growth:2 dcnf in
  let s2 = Solver.create () in
  Solver.ensure_var s2 (n - 1);
  List.iter
    (fun c -> ignore (Solver.add_clause s2 c))
    simp.Simp.cnf.Dimacs.clauses;
  let r2 = Solver.solve s2 in
  if r2 <> r0 then
    fail round
      (Printf.sprintf "simp verdict %b disagrees with reference %b" r2 r0);
  if r2 then begin
    let full = Simp.reconstruct simp (fun v -> Solver.var_value s2 v) in
    if not (eval_dimacs cnf (fun v -> full (v - 1))) then
      fail round "reconstructed simp model does not satisfy the input CNF"
  end;
  (* proof mode: certificates must survive reduction + compaction *)
  let s3 = mk ~proof:true () in
  let r3 = Solver.solve s3 in
  if r3 <> r0 then
    fail round
      (Printf.sprintf "proof-mode verdict %b disagrees with reference %b" r3 r0);
  if not r3 then begin
    Solver.reduce_learnts s3;
    Solver.compact s3;
    check_audit "proof-mode compacted" s3;
    let live = Lrat.input_cnf s3 in
    let drat_text = Drat.export_string s3 in
    if
      Diag.has_errors
        (Cert.check_drat ~item:"arena-drat" ~n_vars:(Solver.n_vars s3)
           ~cnf:live ~proof:drat_text ())
    then fail round "DRAT rejected after arena compaction";
    let e = Lrat.export s3 in
    if
      Diag.has_errors
        (Cert.check_lrat ~item:"arena-lrat" ~n_vars:e.Lrat.n_vars
           ~cnf:e.Lrat.cnf ~proof:e.Lrat.proof ())
    then fail round "LRAT rejected after arena compaction"
  end

let () =
  let arena = ref false in
  let rec parse = function
    | [] -> ()
    | "--rounds" :: v :: rest ->
        rounds := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--vars" :: v :: rest ->
        n_vars := int_of_string v;
        parse rest
    | "--proofs" :: rest ->
        proofs := true;
        parse rest
    | "--arena" :: rest ->
        arena := true;
        parse rest
    | other :: _ ->
        Printf.eprintf "unknown argument %S\n" other;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  for round = 1 to !rounds do
    let st = Random.State.make [| !seed; round |] in
    if !arena then arena_round round st
    else if !proofs then proof_round round st
    else round_check round st
  done;
  Printf.printf "fuzz%s: %d rounds, %d failures\n"
    (if !arena then " (arena)" else if !proofs then " (proofs)" else "")
    !rounds !failures;
  exit (if !failures = 0 then 0 else 1)
