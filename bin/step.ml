(* step — Satisfiability-based funcTion dEcomPosition (OCaml reimplementation).

   Subcommands:
     step stats      print circuit statistics (#In, #Out, #InM, #And)
     step decompose  bi-decompose the primary outputs of a circuit
     step generate   emit a generated benchmark circuit as BLIF
     step suite      list the named benchmark suite
*)

module Aig = Step_aig.Aig
module Circuit = Step_aig.Circuit
module Blif = Step_aig.Blif
module Aag = Step_aig.Aag
module Gate = Step_core.Gate
module Partition = Step_core.Partition
module Problem = Step_core.Problem
module Method = Step_core.Method
module Pipeline = Step_engine.Pipeline
module Engine = Step_engine.Engine
module Config = Step_engine.Config
module Extract = Step_core.Extract
module Verify = Step_core.Verify
module Suite = Step_circuits.Suite
module Generators = Step_circuits.Generators
module Obs = Step_obs.Obs
module Metrics = Step_obs.Metrics
module Profile = Step_obs.Profile
module Trace_summary = Step_obs.Trace_summary
module Json = Step_obs.Json
module Diag = Step_lint.Diag
module Lint = Step_lint.Lint
module Cache = Step_cache.Cache
module Fault = Step_fault.Fault
module Retry = Step_engine.Retry
module Cert = Step_cert.Cert
module Certify = Step_core.Certify

open Cmdliner

(* Flags shared across decompose/report/compare/serve live in one spec
   module so they cannot drift between subcommands. *)
open Cli_flags

(* ---------- stats ---------- *)

let stats_cmd =
  let json_flag =
    let doc = "Emit the statistics as JSON instead of aligned text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run path json =
    let c = load_circuit path in
    let sizes = Circuit.support_sizes c in
    if json then begin
      let po_json i s =
        Json.Obj
          [
            ("po", Json.String (Circuit.output_name c i));
            ("support", Json.Int s);
            ("cone", Json.Int (Aig.cone_size c.Circuit.aig (Circuit.output c i)));
          ]
      in
      let j =
        Json.Obj
          [
            ("circuit", Json.String c.Circuit.name);
            ("n_inputs", Json.Int (Circuit.n_inputs c));
            ("n_outputs", Json.Int (Circuit.n_outputs c));
            ("max_support", Json.Int (Circuit.max_support c));
            ("n_and", Json.Int (Aig.n_ands c.Circuit.aig));
            ( "outputs",
              Json.List (Array.to_list (Array.mapi po_json sizes)) );
          ]
      in
      print_endline (Json.to_string j)
    end
    else begin
      print_endline (Circuit.stats c);
      Array.iteri
        (fun i s ->
          Printf.printf "  %-16s support=%d cone=%d\n"
            (Circuit.output_name c i) s
            (Aig.cone_size c.Circuit.aig (Circuit.output c i)))
        sizes
    end;
    `Ok ()
  in
  let doc = "Print circuit statistics." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(ret (const run $ circuit_arg $ json_flag))

(* ---------- decompose ---------- *)

let extract_arg =
  let doc = "Also derive fA/fB: 'quantify' or 'interpolate'." in
  Arg.(value & opt (some string) None & info [ "extract" ] ~docv:"ENGINE" ~doc)

let verify_flag =
  let doc = "SAT-verify every extracted decomposition." in
  Arg.(value & flag & info [ "verify" ] ~doc)

let recursive_flag =
  let doc =
    "Recursively bi-decompose each output into a gate tree and print its \
     statistics."
  in
  Arg.(value & flag & info [ "recursive"; "r" ] ~doc)

let print_po_result (r : Pipeline.po_result) =
  let status =
    match Engine.po_status r with
    | "indecomposable" -> "not-decomposable"
    | s -> s
  in
  Printf.printf "%-16s n=%-3d %-16s %6.3fs" r.Pipeline.po_name
    r.Pipeline.support_size status r.Pipeline.cpu;
  (match r.Pipeline.partition with
  | None -> ()
  | Some part ->
      Printf.printf "  |XA|=%d |XB|=%d |XC|=%d eD=%.3f eB=%.3f"
        (List.length part.Partition.xa)
        (List.length part.Partition.xb)
        (List.length part.Partition.xc)
        (Partition.disjointness part)
        (Partition.balancedness part));
  if r.Pipeline.degraded then
    Printf.printf "  via %s" (Pipeline.method_name r.Pipeline.method_used);
  (match r.Pipeline.failure with
  | Some f when not r.Pipeline.degraded -> Printf.printf "  %s" f.Pipeline.error
  | _ -> ());
  print_newline ()

let decompose_cmd =
  let run path gate method_ budget jobs po extract verify_ recursive trace
      stats profile deep_stats metrics_out metrics_interval sanitize
      check_artifacts cache no_cache cache_dir faults fallback retries certify
      cert_dir =
    if deep_stats then Metrics.set_deep true;
    let all_diags = ref [] in
    let note_diags diags =
      if diags <> [] then begin
        print_diags diags;
        all_diags := !all_diags @ diags
      end
    in
    let cache_opt = make_cache ~cache ~no_cache ~cache_dir in
    let certify_on = certify || cert_dir <> None in
    Option.iter mkdir_p cert_dir;
    let cert_checked = ref 0 and cert_failed = ref 0 in
    let cert_bytes = ref 0 and cert_secs = ref 0.0 in
    (* Every certificate arrives already self-checked by the engine; here
       it is accounted, its findings surfaced (errors flip the exit code)
       and, under --cert-dir, persisted for later [step certify]. *)
    let note_cert po_name = function
      | None -> ()
      | Some ct ->
          incr cert_checked;
          if not ct.Certify.ok then incr cert_failed;
          cert_bytes := !cert_bytes + ct.Certify.proof_bytes;
          cert_secs := !cert_secs +. ct.Certify.gen_s +. ct.Certify.check_s;
          note_diags ct.Certify.diags;
          Option.iter
            (fun dir -> Cert.save (cert_file dir po_name) ct.Certify.cert)
            cert_dir
    in
    let finish_cert () =
      if certify_on then
        Printf.printf "cert: checked=%d failed=%d proof_bytes=%d time=%.3fs\n"
          !cert_checked !cert_failed !cert_bytes !cert_secs
    in
    let finish_cache () =
      Option.iter print_cache_summary cache_opt;
      finish_cert ()
    in
    let body () =
      apply_sanitize sanitize;
      (match apply_faults faults with
      | Ok () -> ()
      | Error msg -> failwith msg);
      let method_ = Method.of_string method_ in
      let mk_config gate =
        let config =
          supervision_config ~fallback ~retries
            {
              Config.default with
              Config.gate;
              method_;
              per_po_budget = budget;
              check_artifacts;
              jobs;
              cache = cache_opt;
              certify = certify_on;
            }
        in
        match Config.validate config with
        | Ok config -> config
        | Error msg -> failwith msg
      in
      (* validate budgets/jobs up front so every path reports bad flags *)
      let base_config = mk_config Config.default.Config.gate in
      let c = load_circuit path in
      if check_artifacts then note_diags (Engine.lint_circuit c);
      if recursive then begin
        let module R = Step_core.Recursive in
        let config =
          { R.default_config with R.method_; per_step_budget = budget }
        in
        for i = 0 to Circuit.n_outputs c - 1 do
          let p = Problem.of_output c i in
          if Problem.n_vars p >= 2 then begin
            let tree = R.decompose ~config p in
            let s = R.stats_of c.Circuit.aig tree in
            Printf.printf
              "%-16s n=%-3d gates=%-3d leaves=%-3d depth=%-2d \
               max-leaf-support=%d\n"
              (Circuit.output_name c i) (Problem.n_vars p) s.R.gates
              s.R.leaves s.R.depth s.R.max_leaf_support
          end
        done;
        raise Exit
      end;
      if String.lowercase_ascii (String.trim gate) = "auto" then begin
        (* per-output gate selection *)
        let eng = Engine.create ~config:base_config c in
        Array.iter
          (fun (g, r) ->
            (match g with
            | Some g -> Printf.printf "[%s] " (Gate.to_string g)
            | None -> Printf.printf "[-]   ");
            print_po_result r;
            note_diags r.Pipeline.diags;
            note_cert r.Pipeline.po_name r.Pipeline.certificate)
          (Engine.run_auto eng);
        finish_cache ();
        raise Exit
      end;
      let gate = Gate.of_string gate in
      let eng = Engine.create ~config:(mk_config gate) c in
      let engine =
        Option.map
          (fun e ->
            match String.lowercase_ascii e with
            | "quantify" | "q" -> Extract.Quantify
            | "interpolate" | "interp" | "i" -> Extract.Interpolate
            | other -> failwith (Printf.sprintf "unknown engine %S" other))
          extract
      in
      let handle_po (r : Pipeline.po_result) =
        print_po_result r;
        note_diags r.Pipeline.diags;
        match (r.Pipeline.partition, engine) with
        | Some part, Some engine ->
            let p =
              Problem.of_edge c.Circuit.aig
                (Circuit.find_output c r.Pipeline.po_name)
            in
            let e = Extract.run ~engine p gate part in
            Printf.printf "  fA cone=%d fB cone=%d"
              (Aig.cone_size c.Circuit.aig e.Extract.fa)
              (Aig.cone_size c.Circuit.aig e.Extract.fb);
            if verify_ then
              Printf.printf " verified=%b"
                (Verify.decomposition p gate part ~fa:e.Extract.fa
                   ~fb:e.Extract.fb);
            print_newline ();
            (* extraction happened: extend the certificate with the
               proof-carrying fA/fB equivalence miter before accounting *)
            let cert_with_equiv =
              match r.Pipeline.certificate with
              | Some ct -> (
                  match
                    Certify.equivalence_obligation p gate ~fa:e.Extract.fa
                      ~fb:e.Extract.fb
                  with
                  | Some ob -> Some (Certify.add_obligation ct ob)
                  | None -> Some ct)
              | None -> None
            in
            note_cert r.Pipeline.po_name cert_with_equiv
        | _, _ -> note_cert r.Pipeline.po_name r.Pipeline.certificate
      in
      (match po with
      | Some i -> handle_po (Engine.decompose_po eng i)
      | None ->
          let r = Engine.run eng in
          (* circuit-level diags were already printed by the upfront lint *)
          Array.iter handle_po r.Pipeline.per_po;
          Printf.printf "== %s %s %s: #Dec=%d/%d CPU=%.2fs\n"
            r.Pipeline.circuit_name
            (Pipeline.method_name r.Pipeline.method_used)
            (Gate.to_string r.Pipeline.gate_used)
            r.Pipeline.n_decomposed
            (Array.length r.Pipeline.per_po)
            r.Pipeline.total_cpu);
      finish_cache ()
    in
    let prof = if profile then Some (Profile.collector ()) else None in
    let prof_sink =
      match prof with Some (s, _) -> s | None -> Obs.null_sink
    in
    let traced () =
      match trace with
      | Some file ->
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              Obs.with_sink (Obs.tee_sink (Obs.jsonl_sink oc) prof_sink) body)
      | None ->
          if profile then Obs.with_sink prof_sink body else body ()
    in
    (* Periodic exposition runs on its own domain; the final snapshot is
       published on every exit path, including errors. *)
    let stop_dump =
      match metrics_out with
      | Some path when metrics_interval > 0.0 ->
          Some
            (Metrics.start_periodic_dump ~path ~interval_s:metrics_interval
               ~format:(metrics_format path) ())
      | _ -> None
    in
    let finish_metrics () =
      match (stop_dump, metrics_out) with
      | Some stop, _ -> stop ()
      | None, Some path -> Metrics.dump_file ~format:(metrics_format path) path
      | None, None -> ()
    in
    let traced () = Fun.protect ~finally:finish_metrics traced in
    let finish_stats () = if stats then print_string (Metrics.render ()) in
    let finish_profile () =
      match prof with
      | Some (_, get) -> print_string (Profile.render (get ()))
      | None -> ()
    in
    match traced () with
    | () | exception Exit ->
        finish_profile ();
        finish_stats ();
        if Diag.has_errors !all_diags then exit 1 else `Ok ()
    | exception Step_sat.Solver.Sanitizer_violation diags ->
        print_diags diags;
        `Error (false, "solver sanitizer detected invariant violations")
    | exception Failure msg -> `Error (false, msg)
    | exception Sys_error msg -> `Error (false, msg)
  in
  let doc = "Bi-decompose the primary outputs of a circuit." in
  Cmd.v
    (Cmd.info "decompose" ~doc)
    Term.(
      ret
        (const run $ circuit_arg $ gate_arg $ method_arg $ budget_arg
       $ jobs_arg $ po_arg $ extract_arg $ verify_flag $ recursive_flag
       $ trace_arg $ stats_flag $ profile_flag $ deep_stats_flag
       $ metrics_out_arg $ metrics_interval_arg $ sanitize_flag
       $ check_artifacts_flag $ cache_flag $ no_cache_flag $ cache_dir_arg
       $ faults_arg $ fallback_arg $ retries_arg $ certify_flag
       $ cert_dir_arg))

(* ---------- trace ---------- *)

let trace_cmd =
  let file_arg =
    let doc = "JSONL trace file written by $(b,step decompose --trace)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let file2_arg =
    let doc = "Second trace: compare $(i,FILE) (baseline) against it." in
    Arg.(value & pos 1 (some file) None & info [] ~docv:"FILE2" ~doc)
  in
  let diff_flag =
    let doc =
      "Diff two traces span by span: count and self-time deltas, rows \
       over the threshold marked with '!'. Baseline first."
    in
    Arg.(value & flag & info [ "diff" ] ~doc)
  in
  let flame_flag =
    let doc =
      "Emit folded stacks (flamegraph.pl / speedscope input) instead of \
       the summary table."
    in
    Arg.(value & flag & info [ "flame" ] ~doc)
  in
  let hot_flag =
    let doc = "Rank call paths by self time instead of the summary table." in
    Arg.(value & flag & info [ "hot" ] ~doc)
  in
  let threshold_arg =
    let doc = "Relative self-time change marking a diff row significant." in
    Arg.(value & opt float 0.10 & info [ "threshold" ] ~docv:"FRACTION" ~doc)
  in
  let run file file2 diff flame hot threshold =
    try
      match file2 with
      | Some f2 ->
          let base = Trace_summary.of_file file in
          let cur = Trace_summary.of_file f2 in
          let text, _ = Trace_summary.diff ~threshold base cur in
          print_string text;
          `Ok ()
      | None ->
          if diff then
            `Error (true, "trace --diff needs two trace files: BASELINE CURRENT")
          else begin
            if flame then print_string (Profile.to_folded (Profile.of_file file))
            else if hot then
              print_string (Profile.render_hot (Profile.of_file file))
            else print_string (Trace_summary.render (Trace_summary.of_file file));
            `Ok ()
          end
    with
    | Failure msg -> `Error (false, msg)
    | Sys_error msg -> `Error (false, msg)
  in
  let doc =
    "Summarise a JSONL trace into a hot-path breakdown, or diff two traces."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      ret
        (const run $ file_arg $ file2_arg $ diff_flag $ flame_flag $ hot_flag
       $ threshold_arg))

(* ---------- profile ---------- *)

let profile_cmd =
  let file_arg =
    let doc = "JSONL trace file written by $(b,step decompose --trace)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let folded_flag =
    let doc = "Emit folded stacks (flamegraph.pl / speedscope input)." in
    Arg.(value & flag & info [ "folded"; "flame" ] ~doc)
  in
  let hot_flag =
    let doc = "Flatten to call paths ranked by self time." in
    Arg.(value & flag & info [ "hot" ] ~doc)
  in
  let max_depth_arg =
    let doc = "Truncate the call tree below $(docv) levels." in
    Arg.(value & opt (some int) None & info [ "max-depth" ] ~docv:"DEPTH" ~doc)
  in
  let run file folded hot max_depth =
    match Profile.of_file file with
    | p ->
        if folded then print_string (Profile.to_folded p)
        else if hot then print_string (Profile.render_hot p)
        else print_string (Profile.render ?max_depth p);
        `Ok ()
    | exception Failure msg -> `Error (false, msg)
    | exception Sys_error msg -> `Error (false, msg)
  in
  let doc =
    "Aggregate a JSONL trace into a hierarchical hotpath profile \
     (per-call-path counts, total and self time, wall-clock attribution)."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(ret (const run $ file_arg $ folded_flag $ hot_flag $ max_depth_arg))

(* ---------- report / compare / convert ---------- *)

let report_cmd =
  let format_arg =
    let doc = "Output format: text, csv, markdown, json." in
    Arg.(value & opt string "text" & info [ "format"; "f" ] ~docv:"FMT" ~doc)
  in
  let run path gate method_ budget jobs format cache no_cache cache_dir faults
      fallback retries certify =
    match
      (match apply_faults faults with
      | Ok () -> ()
      | Error msg -> failwith msg);
      let gate = Gate.of_string gate in
      let method_ = Method.of_string method_ in
      let c = load_circuit path in
      let cache_opt = make_cache ~cache ~no_cache ~cache_dir in
      let config =
        match
          Config.validate
            (supervision_config ~fallback ~retries
               {
                 Config.default with
                 Config.gate;
                 method_;
                 per_po_budget = budget;
                 jobs;
                 cache = cache_opt;
                 certify;
               })
        with
        | Ok config -> config
        | Error msg -> failwith msg
      in
      let r = Engine.run (Engine.create ~config c) in
      let text =
        match String.lowercase_ascii format with
        | "text" -> Step_engine.Report.to_text r
        | "csv" -> Step_engine.Report.to_csv r
        | "markdown" | "md" -> Step_engine.Report.to_markdown r
        | "json" -> Json.to_string (Step_api.Api.run_to_json r) ^ "\n"
        | other -> failwith (Printf.sprintf "unknown format %S" other)
      in
      print_string text;
      (* the report body carries the hit/miss columns; only the disk-layer
         diagnostics are emitted here, to stderr, so csv stays parseable *)
      Option.iter print_cache_diags cache_opt
    with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let doc = "Decompose a circuit and render a structured report." in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      ret (const run $ circuit_arg $ gate_arg $ method_arg $ budget_arg
         $ jobs_arg $ format_arg $ cache_flag $ no_cache_flag $ cache_dir_arg
         $ faults_arg $ fallback_arg $ retries_arg $ certify_flag))

let compare_cmd =
  let baseline_arg =
    let doc = "Baseline method." in
    Arg.(value & opt string "mg" & info [ "baseline" ] ~docv:"METHOD" ~doc)
  in
  let metric_arg =
    let doc = "Metric: disjointness, balancedness, cost." in
    Arg.(value & opt string "disjointness" & info [ "metric" ] ~docv:"M" ~doc)
  in
  let run path gate method_ budget jobs baseline metric cache no_cache
      cache_dir =
    match
      let gate = Gate.of_string gate in
      let c = load_circuit path in
      (* one cache shared by challenger and baseline: the method is part of
         the key, so they never cross-contaminate, but repeated cones within
         each run still hit *)
      let cache_opt = make_cache ~cache ~no_cache ~cache_dir in
      let run_method m =
        let config =
          match
            Config.validate
              {
                Config.default with
                Config.gate;
                method_ = Method.of_string m;
                per_po_budget = budget;
                jobs;
                cache = cache_opt;
              }
          with
          | Ok config -> config
          | Error msg -> failwith msg
        in
        Engine.run (Engine.create ~config c)
      in
      let challenger = run_method method_ in
      let baseline = run_method baseline in
      let metric =
        match String.lowercase_ascii metric with
        | "disjointness" | "ed" -> Partition.disjointness
        | "balancedness" | "eb" -> Partition.balancedness
        | "cost" | "sum" -> fun p -> Partition.cost p
        | other -> failwith (Printf.sprintf "unknown metric %S" other)
      in
      print_string (Step_engine.Report.compare_table ~baseline ~challenger ~metric);
      Option.iter print_cache_diags cache_opt
    with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let doc = "Compare two partitioning methods on a circuit, per output." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      ret (const run $ circuit_arg $ gate_arg $ method_arg $ budget_arg
         $ jobs_arg $ baseline_arg $ metric_arg $ cache_flag $ no_cache_flag
         $ cache_dir_arg))

let convert_cmd =
  let out_arg =
    let doc = "Output file; the extension (.blif or .aag) picks the format." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc)
  in
  let run path out =
    match
      let c = load_circuit path in
      if Filename.check_suffix out ".aag" then Aag.write_file out c
      else if Filename.check_suffix out ".aig" then
        Step_aig.Aig_bin.write_file out c
      else if Filename.check_suffix out ".blif" then Blif.write_file out c
      else failwith "output must end in .blif, .aag or .aig"
    with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let doc = "Convert circuits between BLIF and ASCII AIGER." in
  Cmd.v (Cmd.info "convert" ~doc) Term.(ret (const run $ circuit_arg $ out_arg))

(* ---------- generate ---------- *)

let generate_cmd =
  let kind_arg =
    let doc = "Generator: adder, multiplier, comparator, parity, mux, decoder, alu, random, planted." in
    Arg.(value & opt string "adder" & info [ "kind"; "k" ] ~docv:"KIND" ~doc)
  in
  let size_arg =
    let doc = "Size parameter." in
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Seed for randomized generators." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let out_arg =
    let doc = "Output BLIF file ('-' for stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run kind n seed out =
    match
      let c =
        match String.lowercase_ascii kind with
        | "adder" -> Generators.ripple_adder n
        | "multiplier" | "mul" -> Generators.multiplier n
        | "comparator" | "cmp" -> Generators.comparator n
        | "parity" -> Generators.parity n
        | "mux" -> Generators.mux_tree n
        | "decoder" -> Generators.decoder n
        | "alu" -> Generators.alu n
        | "random" ->
            Generators.random_dag ~seed ~n_inputs:n ~n_gates:(4 * n)
              ~n_outputs:(max 1 (n / 2))
        | "planted" ->
            (Generators.planted_cone ~seed ~na:(n / 3) ~nb:(n / 3)
               ~nc:(n - (2 * (n / 3)))
               Gate.Or_gate)
              .Generators.circuit
        | other -> failwith (Printf.sprintf "unknown generator %S" other)
      in
      let text = Blif.to_string c in
      if out = "-" then print_string text
      else begin
        let oc = open_out out in
        output_string oc text;
        close_out oc
      end
    with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let doc = "Generate a benchmark circuit and write it as BLIF." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(ret (const run $ kind_arg $ size_arg $ seed_arg $ out_arg))

(* ---------- sat / qbf ---------- *)

let sat_cmd =
  let file_arg =
    let doc = "DIMACS CNF file." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let drat_flag =
    let doc = "On UNSAT, emit a DRAT certificate and self-check it." in
    Arg.(value & flag & info [ "drat" ] ~doc)
  in
  let run file drat sanitize =
    apply_sanitize sanitize;
    let cnf, parse_diags = Step_sat.Dimacs.parse_file_diags file in
    List.iter (fun d -> prerr_endline (Diag.to_text d)) parse_diags;
    let solver = Step_sat.Solver.create ~proof:drat () in
    ignore (Step_sat.Dimacs.load_into solver cnf);
    if Step_sat.Solver.solve solver then begin
      print_endline "s SATISFIABLE";
      let values =
        List.init (Step_sat.Solver.n_vars solver) (fun v ->
            let l = Step_sat.Lit.pos v in
            Step_sat.Lit.to_string
              (if Step_sat.Solver.model_value solver l then l
               else Step_sat.Lit.negate l))
      in
      Printf.printf "v %s 0\n" (String.concat " " values)
    end
    else begin
      print_endline "s UNSATISFIABLE";
      if drat then begin
        let trace = Step_sat.Drat.export solver in
        let ok =
          Step_sat.Drat.check ~cnf:cnf.Step_sat.Dimacs.clauses ~trace
        in
        Printf.printf "c DRAT certificate: %d clauses, self-check %s\n"
          (List.length trace)
          (if ok then "PASSED" else "FAILED");
        print_string (Step_sat.Drat.export_string solver)
      end
    end;
    `Ok ()
  in
  let doc = "Solve a DIMACS CNF file with the built-in CDCL solver." in
  Cmd.v (Cmd.info "sat" ~doc)
    Term.(ret (const run $ file_arg $ drat_flag $ sanitize_flag))

let qbf_cmd =
  let file_arg =
    let doc = "QDIMACS file (at most two quantifier levels)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    match
      let q = Step_qbf.Qdimacs.parse_file file in
      match Step_qbf.Qdimacs.solve q with
      | Step_qbf.Qdimacs.True -> print_endline "s cnf 1 (TRUE)"
      | Step_qbf.Qdimacs.False -> print_endline "s cnf 0 (FALSE)"
      | Step_qbf.Qdimacs.Unknown -> print_endline "s cnf -1 (UNKNOWN)"
    with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let doc = "Decide a 2QBF QDIMACS formula with the CEGAR engine." in
  Cmd.v (Cmd.info "qbf" ~doc) Term.(ret (const run $ file_arg))

let export_qbf_cmd =
  let po_arg =
    let doc = "Primary-output index to export." in
    Arg.(value & opt int 0 & info [ "po" ] ~docv:"INDEX" ~doc)
  in
  let k_arg =
    let doc = "Target bound k (default: loosest, n-2)." in
    Arg.(value & opt (some int) None & info [ "bound"; "k" ] ~docv:"K" ~doc)
  in
  let target_arg =
    let doc = "Target: disjointness, balancedness, combined." in
    Arg.(value & opt string "disjointness" & info [ "target" ] ~docv:"T" ~doc)
  in
  let out_arg =
    let doc = "Output QDIMACS file ('-' for stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let check_flag =
    let doc =
      "Lint the exported QDIMACS before writing it (findings go to stderr; \
       exits non-zero on lint errors)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run path po k target out check =
    match
      let c = load_circuit path in
      let p = Problem.of_edge c.Circuit.aig (Circuit.output c po) in
      let target =
        match String.lowercase_ascii target with
        | "disjointness" | "qd" -> Step_core.Qbf_model.Disjointness
        | "balancedness" | "qb" -> Step_core.Qbf_model.Balancedness
        | "combined" | "qdb" -> Step_core.Qbf_model.Combined
        | other -> failwith (Printf.sprintf "unknown target %S" other)
      in
      let text = Step_core.Qbf_export.or_model ?k ~target p in
      if check then begin
        let name = if out = "-" then "<export>" else out in
        let diags = Step_core.Qbf_export.lint ~name text in
        List.iter (fun d -> prerr_endline (Diag.to_text d)) diags;
        if Diag.has_errors diags then failwith "exported QDIMACS has lint errors"
      end;
      if out = "-" then print_string text
      else begin
        let oc = open_out out in
        output_string oc text;
        close_out oc
      end
    with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
  in
  let doc =
    "Export the paper's negated QBF model (9) for one output as QDIMACS."
  in
  Cmd.v (Cmd.info "export-qbf" ~doc)
    Term.(
      ret
        (const run $ circuit_arg $ po_arg $ k_arg $ target_arg $ out_arg
       $ check_flag))

(* ---------- certify ---------- *)

let certify_cmd =
  let paths_arg =
    let doc =
      "Certificate files ($(b,*.cert.json)) or directories containing them \
       (e.g. a $(b,--cert-dir) from $(b,step decompose))."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let quiet_flag =
    let doc = "Only print failures and the final summary." in
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc)
  in
  let collect path =
    match Sys.is_directory path with
    | true ->
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".cert.json")
        |> List.sort compare
        |> List.map (Filename.concat path)
    | false -> [ path ]
    | exception Sys_error _ -> [ path ]
  in
  let run paths quiet =
    let files = List.concat_map collect paths in
    if files = [] then `Error (false, "no *.cert.json files found")
    else begin
      let checked = ref 0 and failed = ref 0 and unreadable = ref 0 in
      List.iter
        (fun file ->
          match Cert.load file with
          | Error msg ->
              incr unreadable;
              Printf.eprintf "%s: unreadable: %s\n" file msg
          | Ok c ->
              incr checked;
              let diags = Cert.check ~file c in
              if Diag.has_errors diags then begin
                incr failed;
                print_diags diags;
                Printf.printf "%s: FAIL (po %s)\n" file c.Cert.po
              end
              else if not quiet then
                Printf.printf "%s: ok (po %s, %d obligations, %d proof bytes)\n"
                  file c.Cert.po
                  (List.length c.Cert.obligations)
                  (Cert.proof_bytes c))
        files;
      Printf.printf "certify: checked=%d failed=%d unreadable=%d\n" !checked
        !failed !unreadable;
      if !failed > 0 then exit 1
      else if !unreadable > 0 then exit 2
      else `Ok ()
    end
  in
  let doc =
    "Independently re-validate decomposition certificates (LRAT/DRAT proofs, \
     SAT witnesses) written by $(b,step decompose --cert-dir)."
  in
  Cmd.v (Cmd.info "certify" ~doc) Term.(ret (const run $ paths_arg $ quiet_flag))

(* ---------- lint ---------- *)

let lint_cmd =
  let files_arg =
    let doc =
      "Artifact files to lint: .cnf/.dimacs, .qdimacs/.qdm, .blif, .aag, \
       .drat/.lrat proofs, or binary .aig."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  let json_flag =
    let doc = "Emit the findings as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let strict_flag =
    let doc = "Treat warnings as errors for the exit code." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  (* Binary AIGER has no textual scanner: parse it and lint the in-memory
     AIG instead. Everything else goes through the lint dispatcher. *)
  let lint_one path =
    if Filename.check_suffix path ".aig" then
      match Step_aig.Aig_bin.parse_file path with
      | c -> List.map (Diag.with_file path) (Pipeline.lint_circuit c)
      | exception Failure msg -> [ Diag.error ~file:path ~code:"IO001" msg ]
      | exception Sys_error msg -> [ Diag.error ~file:path ~code:"IO001" msg ]
    else Lint.lint_file path
  in
  let run files json strict =
    let results = List.map (fun f -> (f, lint_one f)) files in
    let all = List.concat_map snd results in
    if json then begin
      let file_json (f, ds) =
        Json.Obj
          [ ("file", Json.String f); ("diagnostics", Diag.list_to_json ds) ]
      in
      let j =
        Json.Obj
          [
            ("files", Json.List (List.map file_json results));
            ("errors", Json.Int (Diag.count_errors all));
            ("warnings", Json.Int (Diag.count_warnings all));
          ]
      in
      print_endline (Json.to_string j)
    end
    else begin
      List.iter
        (fun (f, ds) ->
          if ds = [] then Printf.printf "%s: clean\n" f else print_diags ds)
        results;
      if List.length files > 1 || all <> [] then
        print_endline (Diag.summary all)
    end;
    if Diag.has_errors all || (strict && Diag.count_warnings all > 0) then
      exit 1
    else `Ok ()
  in
  let doc = "Lint artifact files (CNF, QDIMACS, BLIF, AIGER)." in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(ret (const run $ files_arg $ json_flag $ strict_flag))

(* ---------- serve ---------- *)

let serve_cmd =
  let socket_arg =
    let doc =
      "Listen on a Unix domain socket at $(docv) (one worker domain per \
       connection). Without it the server speaks JSON-lines on \
       stdin/stdout — the scriptable transport."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let max_inflight_arg =
    let doc =
      "Admission-control pool: per-PO job slots shared by all clients. A \
       decompose request reserves its $(b,--jobs) worth of slots for its \
       whole run; requests that cannot get them are rejected with a \
       structured error instead of queueing."
    in
    Arg.(value & opt int 4 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let max_budget_arg =
    let doc =
      "Per-request deadline cap in seconds: requested budgets above it \
       are rejected, unspecified budgets are clamped down to it."
    in
    Arg.(value & opt float 300.0 & info [ "max-budget" ] ~docv:"SECONDS" ~doc)
  in
  let run socket max_inflight max_budget gate method_ budget jobs trace stats
      deep_stats metrics_out metrics_interval sanitize check_artifacts
      no_cache cache_dir faults fallback retries certify =
    match
      if deep_stats then Metrics.set_deep true;
      apply_sanitize sanitize;
      (match apply_faults faults with
      | Ok () -> ()
      | Error msg -> failwith msg);
      let gate = Gate.of_string gate in
      let method_ = Method.of_string method_ in
      (* The point of a daemon is the warm cache: on unless --no-cache. *)
      let cache_opt =
        make_cache ~cache:(not no_cache) ~no_cache ~cache_dir
      in
      let config =
        match
          Config.validate
            (supervision_config ~fallback ~retries
               {
                 Config.default with
                 Config.gate;
                 method_;
                 per_po_budget = budget;
                 check_artifacts;
                 jobs;
                 cache = cache_opt;
                 certify;
               })
        with
        | Ok config -> config
        | Error msg -> failwith msg
      in
      let srv =
        Step_server.Server.create
          { Step_server.Server.base = config; max_inflight; max_budget }
      in
      (* Replace the CLI's raise-Sys.Break handlers: a signal must not
         interrupt an in-flight request, it must start a drain — the
         serve loop completes current work, flushes sinks and returns,
         and the process exits with the conventional 128+signal code. *)
      Sys.catch_break false;
      let drain_on signal code =
        try
          Sys.set_signal signal
            (Sys.Signal_handle
               (fun _ ->
                 Step_server.Server.request_drain srv ~exit_code:code ()))
        with Invalid_argument _ | Sys_error _ -> ()
      in
      drain_on Sys.sigint 130;
      drain_on Sys.sigterm 143;
      let stop_dump =
        match metrics_out with
        | Some path when metrics_interval > 0.0 ->
            Some
              (Metrics.start_periodic_dump ~path ~interval_s:metrics_interval
                 ~format:(metrics_format path) ())
        | _ -> None
      in
      let finish_metrics () =
        match (stop_dump, metrics_out) with
        | Some stop, _ -> stop ()
        | None, Some path -> Metrics.dump_file ~format:(metrics_format path) path
        | None, None -> ()
      in
      let body () =
        match socket with
        | None -> Step_server.Server.serve_stdio srv
        | Some path -> Step_server.Server.serve_socket srv ~path
      in
      let traced () =
        match trace with
        | Some file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> Obs.with_sink (Obs.jsonl_sink oc) body)
        | None -> body ()
      in
      let code = Fun.protect ~finally:finish_metrics traced in
      (* stdout is the wire on the stdio transport: telemetry and cache
         diagnostics go to stderr. *)
      if stats then prerr_string (Metrics.render ());
      Option.iter
        (fun c ->
          List.iter (fun d -> prerr_endline (Diag.to_text d)) (Cache.diags c))
        cache_opt;
      flush stdout;
      flush stderr;
      if code <> 0 then exit code
    with
    | () -> `Ok ()
    | exception Failure msg -> `Error (false, msg)
    | exception Sys_error msg -> `Error (false, msg)
  in
  let doc =
    "Serve decomposition requests over a versioned JSON-lines API \
     (docs/SERVER.md): long-lived engine, shared warm cache, admission \
     control, graceful drain on SIGINT/SIGTERM."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ socket_arg $ max_inflight_arg $ max_budget_arg $ gate_arg
       $ method_arg $ budget_arg $ jobs_arg $ trace_arg $ stats_flag
       $ deep_stats_flag $ metrics_out_arg $ metrics_interval_arg
       $ sanitize_flag $ check_artifacts_flag $ no_cache_flag $ cache_dir_arg
       $ faults_arg $ fallback_arg $ retries_arg $ certify_flag))

(* ---------- suite ---------- *)

let suite_cmd =
  let run () =
    List.iter
      (fun (name, s) ->
        Printf.printf "%-12s paper: #In=%-5d #InM=%-4d #Out=%d\n" name
          s.Suite.p_in s.Suite.p_inm s.Suite.p_out)
      Suite.paper_table1;
    `Ok ()
  in
  let doc = "List the named benchmark suite (Table I circuits)." in
  Cmd.v (Cmd.info "suite" ~doc) Term.(ret (const run $ const ()))

let main_cmd =
  let doc = "QBF-based Boolean function bi-decomposition (STEP)" in
  let info = Cmd.info "step" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      stats_cmd;
      decompose_cmd;
      trace_cmd;
      profile_cmd;
      report_cmd;
      compare_cmd;
      convert_cmd;
      generate_cmd;
      suite_cmd;
      sat_cmd;
      qbf_cmd;
      export_qbf_cmd;
      lint_cmd;
      certify_cmd;
      serve_cmd;
    ]

(* SIGINT/SIGTERM raise Sys.Break at the interrupted point, so every
   [Fun.protect]-guarded sink on the way out (trace files, cache temp
   files) flushes and closes before the process exits with the
   conventional 128+signal code. [eval ~catch:false] lets the exception
   reach us instead of being rendered as a backtrace. *)
let () =
  let got_term = ref false in
  Sys.catch_break true;
  (try
     Sys.set_signal Sys.sigterm
       (Sys.Signal_handle
          (fun _ ->
            got_term := true;
            raise Sys.Break))
   with Invalid_argument _ | Sys_error _ -> ());
  match Cmd.eval ~catch:false main_cmd with
  | code -> exit code
  | exception Sys.Break ->
      flush stdout;
      let signal, code =
        if !got_term then ("terminated", 143) else ("interrupted", 130)
      in
      Printf.eprintf "step: %s\n" signal;
      exit code
  | exception e ->
      (* what cmdliner's default handler would do, minus swallowing Break *)
      let bt = Printexc.get_raw_backtrace () in
      flush stdout;
      Printf.eprintf "step: internal error, uncaught exception:\n%s\n%s"
        (Printexc.to_string e)
        (Printexc.raw_backtrace_to_string bt);
      exit 125
