(* The one flag vocabulary shared by the step subcommands.

   decompose / report / compare / serve all accept the same engine knobs
   (gate, method, budgets, jobs, cache, faults, supervision, certify,
   telemetry); defining each exactly once here keeps their names,
   defaults and doc strings from drifting between subcommands. *)

module Circuit = Step_aig.Circuit
module Blif = Step_aig.Blif
module Aag = Step_aig.Aag
module Config = Step_engine.Config
module Retry = Step_engine.Retry
module Metrics = Step_obs.Metrics
module Diag = Step_lint.Diag
module Cache = Step_cache.Cache
module Fault = Step_fault.Fault
module Suite = Step_circuits.Suite

open Cmdliner

(* ---------- circuit loading ---------- *)

(* Missing or unreadable inputs are usage errors, not crashes: one line
   on stderr, exit 2, no backtrace. *)
let input_error msg =
  Printf.eprintf "step: %s\n" msg;
  exit 2

let load_circuit path_or_name =
  if Sys.file_exists path_or_name then begin
    match
      if Filename.check_suffix path_or_name ".aag" then
        Aag.parse_file path_or_name
      else if Filename.check_suffix path_or_name ".aig" then
        Step_aig.Aig_bin.parse_file path_or_name
      else Blif.parse_file path_or_name
    with
    | c -> c
    | exception Sys_error msg -> input_error msg
  end
  else
    match Suite.by_name path_or_name with
    | c -> c
    | exception Not_found ->
        input_error
          (Printf.sprintf
             "%s: not a file and not a known benchmark name (try `step suite`)"
             path_or_name)

let circuit_arg =
  let doc =
    "Input circuit: a .blif or .aag file, or a named benchmark from the \
     built-in suite (see $(b,step suite))."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

(* ---------- engine knobs ---------- *)

let gate_arg =
  let doc = "Gate type: or, and, xor, or 'auto' to pick per output." in
  Arg.(value & opt string "or" & info [ "gate"; "g" ] ~docv:"GATE" ~doc)

let method_arg =
  let doc = "Partitioning method: ljh, mg, qd, qb, qdb." in
  Arg.(value & opt string "qd" & info [ "method"; "m" ] ~docv:"METHOD" ~doc)

let budget_arg =
  let doc = "Per-output time budget in seconds." in
  Arg.(value & opt float 10.0 & info [ "budget"; "b" ] ~docv:"SECONDS" ~doc)

let jobs_arg =
  let doc =
    "Decompose primary outputs on $(docv) worker domains in parallel. \
     Results are identical to a sequential run, in the same order."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let po_arg =
  let doc = "Decompose only the output with this index." in
  Arg.(value & opt (some int) None & info [ "po" ] ~docv:"INDEX" ~doc)

let check_artifacts_flag =
  let doc =
    "Lint the intermediate artifacts (input AIG, produced partitions) and \
     print any findings; exits non-zero on lint errors."
  in
  Arg.(value & flag & info [ "check-artifacts" ] ~doc)

(* ---------- telemetry ---------- *)

let trace_arg =
  let doc =
    "Write a JSONL span trace of the run to $(docv) (inspect with $(b,step \
     trace))."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_flag =
  let doc =
    "After the run, print the process-wide telemetry: SAT \
     conflicts/decisions/propagations, CEGAR refinements, QBF queries, and \
     latency histograms."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let profile_flag =
  let doc =
    "After the run, print a hierarchical hotpath profile aggregated live \
     from the span stream (works with or without $(b,--trace))."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let deep_stats_flag =
  let doc =
    "Enable deep telemetry (equivalent to STEP_DEEP_TELEMETRY=1): \
     learned-clause LBD/length distributions, restart episode and \
     clause-DB-reduction timings, per-call solver phase counts, CEGAR \
     per-iteration series, and per-cone cache attribution."
  in
  Arg.(value & flag & info [ "deep-stats" ] ~doc)

let metrics_out_arg =
  let doc =
    "Write the full metrics registry to $(docv) when the run finishes — \
     Prometheus text format, or JSON if $(docv) ends in .json. With \
     $(b,--metrics-interval) the file is republished periodically \
     (atomically) during the run."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let metrics_interval_arg =
  let doc =
    "Republish $(b,--metrics-out) every $(docv) seconds during the run \
     (0 = only at the end)."
  in
  Arg.(value & opt float 0.0 & info [ "metrics-interval" ] ~docv:"SECONDS" ~doc)

let metrics_format path =
  if Filename.check_suffix path ".json" then `Json else `Prometheus

(* ---------- robustness ---------- *)

let sanitize_flag =
  let doc =
    "Enable the solver's runtime invariant sanitizer (equivalent to \
     STEP_SANITIZE=1): audits watch lists, trail/assignment consistency \
     and clause references at decision boundaries."
  in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

(* Solvers read STEP_SANITIZE at creation, so setting it here covers every
   solver the run creates, however deep in the stack. *)
let apply_sanitize flag = if flag then Unix.putenv "STEP_SANITIZE" "1"

let faults_arg =
  let doc =
    "Arm the deterministic fault-injection harness with $(docv) — same \
     grammar as $(b,STEP_FAULTS) (see docs/ROBUSTNESS.md), e.g. \
     'seed=7;solver.solve@po:0#1'."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

(* The library arms itself from STEP_FAULTS at startup; the flag goes
   through [configure] directly so it also works after that point. *)
let apply_faults = function
  | None -> Ok ()
  | Some text -> (
      match Fault.parse text with
      | Ok spec ->
          Fault.configure spec;
          Ok ()
      | Error msg -> Error msg)

let fallback_arg =
  let doc =
    "Degradation ladder: when an output's job fails (or times out with \
     nothing to show), retry it with these methods in order, e.g. \
     'qdb>qb>mg'. Recovered outputs are reported as degraded."
  in
  Arg.(
    value & opt (some string) None & info [ "fallback" ] ~docv:"LADDER" ~doc)

let retries_arg =
  let doc =
    "Retry transiently-failing per-output jobs up to $(docv) times with \
     seeded exponential backoff (deterministic failures are never \
     retried)."
  in
  Arg.(
    value
    & opt int (Retry.default.Retry.max_attempts - 1)
    & info [ "retries" ] ~docv:"N" ~doc)

let supervision_config ~fallback ~retries config =
  let config =
    {
      config with
      Config.retry = { Retry.default with Retry.max_attempts = retries + 1 };
    }
  in
  match fallback with
  | None -> config
  | Some text -> (
      match Config.fallback_of_string text with
      | Ok ladder -> { config with Config.fallback = ladder }
      | Error msg -> failwith msg)

(* ---------- cache ---------- *)

let cache_flag =
  let doc =
    "Memoize per-output decompositions by canonical cone structure. \
     Outputs whose cones are structurally identical up to input renaming \
     are solved once and replayed."
  in
  Arg.(value & flag & info [ "cache" ] ~doc)

let no_cache_flag =
  let doc =
    "Disable the decomposition cache (overrides $(b,--cache) and \
     $(b,--cache-dir))."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_dir_arg =
  let doc =
    "Persist cache entries as versioned JSON files under $(docv), shared \
     across runs (implies $(b,--cache)). Corrupt or stale entries are \
     skipped with a diagnostic, never fatal."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let make_cache ~cache ~no_cache ~cache_dir =
  if no_cache then None
  else if cache || cache_dir <> None then Some (Cache.create ?dir:cache_dir ())
  else None

(* Summary goes to stdout (it is part of the run's result); disk-layer
   diagnostics go to stderr so machine-readable formats stay parseable. *)
let print_cache_diags c =
  List.iter (fun d -> prerr_endline (Diag.to_text d)) (Cache.diags c)

let print_cache_summary c =
  print_cache_diags c;
  let s = Cache.stats c in
  Printf.printf "cache: hits=%d misses=%d entries=%d\n" s.Cache.hits
    s.Cache.misses s.Cache.entries;
  if Metrics.deep () then
    List.iter
      (fun a ->
        Printf.printf "cache: cone %s hits=%d misses=%d\n"
          (String.sub (Digest.to_hex (Digest.string a.Cache.cone_key)) 0 12)
          a.Cache.cone_hits a.Cache.cone_misses)
      (Cache.attribution ~top:5 c)

(* ---------- certification ---------- *)

let certify_flag =
  let doc =
    "Produce a proof-carrying certificate for every solved output (LRAT \
     refutations, SAT witnesses) and re-validate each with the independent \
     checker; exits non-zero if any certificate fails. Roughly doubles solve \
     cost. See docs/CERTIFICATION.md."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let cert_dir_arg =
  let doc =
    "Write each output's certificate to $(docv)/<po>.cert.json (implies \
     $(b,--certify)); re-check them later with $(b,step certify)."
  in
  Arg.(value & opt (some string) None & info [ "cert-dir" ] ~docv:"DIR" ~doc)

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* PO names come from BLIF/AIGER symbol tables: keep them filesystem-safe. *)
let cert_file dir po_name =
  let safe =
    String.map
      (fun ch ->
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ch
        | _ -> '_')
      po_name
  in
  Filename.concat dir (safe ^ ".cert.json")

(* ---------- diagnostics ---------- *)

let print_diags diags =
  List.iter (fun d -> print_endline (Diag.to_text d)) diags
