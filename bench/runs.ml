(* Shared data collection for the experiment tables: runs every method on
   every benchmark circuit once per gate and caches the results, since
   Tables I-IV all read the same OR runs. *)

module Circuit = Step_aig.Circuit
module Gate = Step_core.Gate
module Partition = Step_core.Partition
module Pipeline = Step_engine.Pipeline

type config = {
  per_po_budget : float;
  scale : float;
  quick : bool; (* restrict circuit list for smoke runs *)
  jobs : int; (* worker domains per circuit run *)
  cache : bool; (* memoize per-PO decompositions by canonical cone *)
  cache_dir : string option; (* persist cache entries across bench runs *)
  certify : bool; (* generate+check proof certificates for every answer *)
}

(* 0.5 s per output keeps a full regeneration of all tables, the figure
   and the ablations in the ten-minute range; pass --budget to push the
   solved-percentages of Table IV toward saturation. *)
let default_config =
  {
    per_po_budget = 0.5;
    scale = 1.0;
    quick = false;
    jobs = 1;
    cache = false;
    cache_dir = None;
    certify = false;
  }

let all_methods =
  [ Pipeline.Ljh; Pipeline.Mg; Pipeline.Qd; Pipeline.Qb; Pipeline.Qdb ]

let qbf_methods = [ Pipeline.Qd; Pipeline.Qb; Pipeline.Qdb ]

type key = { circuit : string; gate : Gate.t; method_ : Pipeline.method_ }

let cache : (key, Pipeline.circuit_result) Hashtbl.t = Hashtbl.create 64

(* The engine-level decomposition cache (canonical cone memoization) is
   distinct from the result cache above: one instance shared by every run
   of a bench invocation, created lazily on first --cache use. *)
module Dcache = Step_cache.Cache

let deco_cache : Dcache.t option ref = ref None

let deco_cache_of config =
  if not (config.cache || config.cache_dir <> None) then None
  else
    match !deco_cache with
    | Some c -> Some c
    | None ->
        let c = Dcache.create ?dir:config.cache_dir () in
        deco_cache := Some c;
        Some c

type stats = { n_in : int; inm : int; n_out : int }

let circuits_cache : (float * bool, Circuit.t list) Hashtbl.t =
  Hashtbl.create 4

let stats_cache : (string, stats) Hashtbl.t = Hashtbl.create 32

let circuits config =
  let key = (config.scale, config.quick) in
  match Hashtbl.find_opt circuits_cache key with
  | Some l -> l
  | None ->
      let l = Step_circuits.Suite.table1_suite ~scale:config.scale () in
      let l =
        if config.quick then
          List.filteri (fun i _ -> i >= List.length l - 6) l (* smallest *)
        else l
      in
      (* snapshot statistics before any solver pollutes the managers with
         copy inputs *)
      List.iter
        (fun c ->
          Hashtbl.replace stats_cache c.Circuit.name
            {
              n_in = Circuit.n_inputs c;
              inm = Circuit.max_support c;
              n_out = Circuit.n_outputs c;
            })
        l;
      Hashtbl.replace circuits_cache key l;
      l

let stats_of name = Hashtbl.find stats_cache name

let run config circuit gate method_ =
  let key = { circuit = circuit.Circuit.name; gate; method_ } in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let engine_config =
        {
          Step_engine.Config.default with
          Step_engine.Config.gate;
          method_;
          per_po_budget = config.per_po_budget;
          jobs = config.jobs;
          cache = deco_cache_of config;
          certify = config.certify;
        }
      in
      let r =
        Step_engine.Engine.run
          (Step_engine.Engine.create ~config:engine_config circuit)
      in
      Hashtbl.replace cache key r;
      r

(* Machine-readable snapshot of every cached run so far, one file per
   artifact: bench_out/run_<artifact>.json *)
let dump_json config ~dir ~artifact =
  let module J = Step_obs.Json in
  let results =
    Hashtbl.fold (fun _ r acc -> r :: acc) cache []
    |> List.sort (fun (a : Pipeline.circuit_result) b ->
           compare
             ( a.Pipeline.circuit_name,
               Pipeline.method_name a.Pipeline.method_used,
               Gate.to_string a.Pipeline.gate_used )
             ( b.Pipeline.circuit_name,
               Pipeline.method_name b.Pipeline.method_used,
               Gate.to_string b.Pipeline.gate_used ))
  in
  let cache_hits, cache_misses, cache_entries =
    match !deco_cache with
    | Some c ->
        let s = Dcache.stats c in
        (s.Dcache.hits, s.Dcache.misses, s.Dcache.entries)
    | None -> (0, 0, 0)
  in
  (* certification overhead summed over every cached run *)
  let cert_checked, cert_failed, cert_bytes, cert_s =
    List.fold_left
      (fun (ck, fl, by, s) r ->
        let c, f = Step_engine.Report.cert_counts r in
        let b, t = Step_engine.Report.cert_totals r in
        (ck + c, fl + f, by + b, s +. t))
      (0, 0, 0, 0.0) results
  in
  let j =
    J.Obj
      [
        ("schema_version", J.Int Step_api.Api.schema_version);
        ("artifact", J.String artifact);
        ( "config",
          J.Obj
            [
              ("per_po_budget_s", J.Float config.per_po_budget);
              ("scale", J.Float config.scale);
              ("quick", J.Bool config.quick);
              ("jobs", J.Int config.jobs);
              ("cache", J.Bool (config.cache || config.cache_dir <> None));
              ("certify", J.Bool config.certify);
            ] );
        ("cache_hits", J.Int cache_hits);
        ("cache_misses", J.Int cache_misses);
        ("cache_entries", J.Int cache_entries);
        ("cert_checked", J.Int cert_checked);
        ("cert_failed", J.Int cert_failed);
        ("cert_proof_bytes", J.Int cert_bytes);
        ("cert_s", J.Float cert_s);
        ("runs", J.List (List.map Step_api.Api.run_to_json results));
      ]
  in
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let file = Filename.concat dir (Printf.sprintf "run_%s.json" artifact) in
  (* temp file + rename in the same directory: an interrupted or crashed
     run never leaves a truncated run_*.json behind *)
  let tmp = Filename.temp_file ~temp_dir:dir "run-" ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (J.to_string j);
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp file;
  Printf.printf "wrote %s\n%!" file

(* per-PO metric comparison between a QBF method and a baseline: counts
   (better, equal, comparable) over POs decomposed by both *)
let compare_metric (metric : Partition.t -> float) (challenger : Pipeline.circuit_result)
    (baseline : Pipeline.circuit_result) =
  let better = ref 0 and equal = ref 0 and total = ref 0 in
  Array.iteri
    (fun i cr ->
      let br = baseline.Pipeline.per_po.(i) in
      match (cr.Pipeline.partition, br.Pipeline.partition) with
      | Some cp, Some bp ->
          incr total;
          let mc = metric cp and mb = metric bp in
          if mc < mb -. 1e-9 then incr better
          else if Float.abs (mc -. mb) <= 1e-9 then incr equal
      | _, _ -> ())
    challenger.Pipeline.per_po;
  (!better, !equal, !total)

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let metric_disjointness p = Partition.disjointness p

let metric_balancedness p = Partition.balancedness p

let metric_sum p = Partition.disjointness p +. Partition.balancedness p
