(* Benchmark harness entry point.

   Default mode regenerates every table and figure of the paper's
   evaluation (plus the DESIGN.md ablations) and prints them. The
   [--bechamel] mode additionally runs a Bechamel micro-benchmark suite
   with one Test.make per table, timing the table's underlying workload
   on a reduced configuration (Bechamel needs many iterations, so each
   test wraps a single-circuit slice of the table's computation).

   Usage:
     dune exec bench/main.exe                 # all tables + figure + ablations
     dune exec bench/main.exe -- --quick      # reduced circuit set
     dune exec bench/main.exe -- --table 3    # one artifact (1..4, fig, a1..a7)
     dune exec bench/main.exe -- --budget 5.0 # per-PO time budget (seconds)
     dune exec bench/main.exe -- --bechamel   # Bechamel micro-suite
*)

module Pipeline = Step_engine.Pipeline
module Gate = Step_core.Gate

let usage () =
  prerr_endline
    "usage: main.exe [--quick] [--budget SECONDS] [--scale S] [--jobs N] \
     [--cache] [--cache-dir DIR] [--certify] \
     [--table 1|2|3|4|fig|a1|a2|a3|a4|a5|a6|a7] [--bechamel]\n\
    \       main.exe --planted [--snapshot FILE] [--baseline FILE] \
     [--tolerance F] [--quality-only] [--handicap N]";
  exit 2

type selection =
  | All
  | One of string

let () =
  let config = ref Runs.default_config in
  let selection = ref All in
  let bechamel = ref false in
  let planted = ref false in
  let snapshot = ref None in
  let baseline = ref None in
  let tolerance = ref 0.5 in
  let quality_only = ref false in
  let handicap = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--planted" :: rest ->
        planted := true;
        parse rest
    | "--snapshot" :: v :: rest ->
        planted := true;
        snapshot := Some v;
        parse rest
    | "--baseline" :: v :: rest ->
        planted := true;
        baseline := Some v;
        parse rest
    | "--tolerance" :: v :: rest ->
        tolerance := float_of_string v;
        parse rest
    | "--quality-only" :: rest ->
        quality_only := true;
        parse rest
    | "--handicap" :: v :: rest ->
        handicap := int_of_string v;
        parse rest
    | "--quick" :: rest ->
        config := { !config with Runs.quick = true };
        parse rest
    | "--budget" :: v :: rest ->
        config := { !config with Runs.per_po_budget = float_of_string v };
        parse rest
    | "--scale" :: v :: rest ->
        config := { !config with Runs.scale = float_of_string v };
        parse rest
    | ("--jobs" | "-j") :: v :: rest ->
        config := { !config with Runs.jobs = int_of_string v };
        parse rest
    | "--cache" :: rest ->
        config := { !config with Runs.cache = true };
        parse rest
    | "--cache-dir" :: v :: rest ->
        config := { !config with Runs.cache_dir = Some v };
        parse rest
    | "--certify" :: rest ->
        config := { !config with Runs.certify = true };
        parse rest
    | "--table" :: v :: rest ->
        selection := One (String.lowercase_ascii v);
        parse rest
    | "--bechamel" :: rest ->
        bechamel := true;
        parse rest
    | other :: _ ->
        Printf.eprintf "unknown argument %S\n" other;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Planted-suite baseline mode: deterministic snapshot / regression
     gate, independent of the paper-table artifacts. *)
  if !planted then begin
    (match !snapshot with
    | Some path -> Baseline.save path (Baseline.run_suite ())
    | None -> ());
    (match !baseline with
    | Some path ->
        let code =
          try
            Baseline.check ~baseline_path:path ~tolerance:!tolerance
              ~quality_only:!quality_only ~handicap:!handicap
          with Failure msg | Sys_error msg ->
            prerr_endline ("bench: " ^ msg);
            2
        in
        exit code
    | None -> ());
    if !snapshot = None && !baseline = None then begin
      (* bare --planted: print the suite rows *)
      List.iter
        (fun r ->
          Printf.printf "%-28s dec=%d/%d failed=%d wall=%.3fs\n" r.Baseline.id
            r.Baseline.n_decomposed r.Baseline.n_po r.Baseline.n_failed
            r.Baseline.wall_s)
        (Baseline.run_suite ())
    end;
    exit 0
  end;
  let config = !config in
  let artifacts =
    [
      ("1", "table1", fun () -> Tables.table1 config);
      ("2", "table2", fun () -> Tables.table2 config);
      ("3", "table3", fun () -> Tables.table3 config);
      ("4", "table4", fun () -> Tables.table4 config);
      ("fig", "fig", fun () -> Tables.figure1 config);
      ("a1", "a1", fun () -> Tables.ablation_symmetry config);
      ("a2", "a2", fun () -> Tables.ablation_strategy config);
      ("a3", "a3", fun () -> Tables.ablation_extract config);
      ("a4", "a4", fun () -> Tables.ablation_weights config);
      ("a5", "a5", fun () -> Tables.ablation_bdd config);
      ("a6", "a6", fun () -> Tables.ablation_depth config);
      ("a7", "a7", fun () -> Tables.ablation_seed_order config);
    ]
  in
  (* Each artifact also leaves a machine-readable record of every
     pipeline run it (and its predecessors) performed. *)
  let with_dump (_, artifact, f) () =
    f ();
    Runs.dump_json config ~dir:"bench_out" ~artifact
  in
  if !bechamel then begin
    (* One Bechamel test per table: each samples the table's workload on
       the smallest suite circuit so a run is fast enough to repeat. *)
    let open Bechamel in
    let quick = { config with Runs.quick = true; per_po_budget = 0.5 } in
    let circuit () =
      match Runs.circuits quick with c :: _ -> c | [] -> assert false
    in
    let method_run m () =
      (* fresh run (bypasses the cache) to measure actual work *)
      ignore
        (Pipeline.run ~per_po_budget:quick.Runs.per_po_budget (circuit ())
           Gate.Or_gate m)
    in
    let tests =
      [
        Test.make ~name:"table1-quality-runs (QD slice)"
          (Staged.stage (method_run Pipeline.Qd));
        Test.make ~name:"table2-aggregate (QB slice)"
          (Staged.stage (method_run Pipeline.Qb));
        Test.make ~name:"table3-performance (MG slice)"
          (Staged.stage (method_run Pipeline.Mg));
        Test.make ~name:"table4-solved (QDB slice)"
          (Staged.stage (method_run Pipeline.Qdb));
        Test.make ~name:"figure1-scatter (LJH slice)"
          (Staged.stage (method_run Pipeline.Ljh));
      ]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) () in
    let ols =
      Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
    in
    List.iter
      (fun test ->
        let raw = Benchmark.all cfg instances test in
        let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
        Hashtbl.iter
          (fun label o ->
            let per_run_ns =
              match Analyze.OLS.estimates o with
              | Some (t :: _) -> t
              | Some [] | None -> nan
            in
            Printf.printf "bechamel %-40s %10.3f ms/run\n" label
              (per_run_ns /. 1e6))
          results)
      tests;
    print_endline "bechamel suite done"
  end
  else begin
    match !selection with
    | All -> List.iter (fun a -> with_dump a ()) artifacts
    | One key -> begin
        match
          List.find_opt (fun (k, _, _) -> k = key) artifacts
        with
        | Some a -> with_dump a ()
        | None -> usage ()
      end
  end
