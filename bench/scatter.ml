(* ASCII log-log scatter plots for Figure 1 (CPU time comparisons). *)

let render ~title ~xlabel ~ylabel points =
  let w = 48 and h = 20 in
  let lo = 1e-4 and hi = 10_000.0 in
  let clampf v = Float.max lo (Float.min hi v) in
  let coord v extent =
    let v = clampf v in
    let r = log (v /. lo) /. log (hi /. lo) in
    int_of_float (r *. float_of_int (extent - 1))
  in
  let grid = Array.make_matrix h w ' ' in
  (* diagonal y = x *)
  for i = 0 to min w h - 1 do
    grid.(h - 1 - (i * h / w)).(i) <- '.'
  done;
  List.iter
    (fun (x, y) ->
      let cx = coord x w and cy = coord y h in
      grid.(h - 1 - cy).(cx) <- '*')
    points;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "  %s\n" title);
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 then Printf.sprintf "%8.0e" hi
        else if row = h - 1 then Printf.sprintf "%8.0e" lo
        else String.make 8 ' '
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s |%s|\n" label (String.init w (Array.get line))))
    grid;
  Buffer.add_string buf
    (Printf.sprintf "  %8s  %-10.0e%*s%.0e\n" "" lo (w - 14) "" hi);
  Buffer.add_string buf (Printf.sprintf "  x: %s (s)   y: %s (s)\n" xlabel ylabel);
  Buffer.contents buf

let csv ~xlabel ~ylabel points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "circuit,%s,%s\n" xlabel ylabel);
  List.iter
    (fun (name, x, y) ->
      Buffer.add_string buf (Printf.sprintf "%s,%.6f,%.6f\n" name x y))
    points;
  Buffer.contents buf
