(* Bench regression gating against committed BENCH_N.json snapshots.

   The planted suite below is fully deterministic (seeded planted cones
   plus small structured blocks), so quality numbers (decomposed counts,
   failure counts) must reproduce exactly on any machine; wall-clock is
   gated with a relative tolerance plus an absolute slack so sub-100ms
   rows don't flap, and can be skipped entirely (--quality-only) when
   comparing across machines. *)

module Circuit = Step_aig.Circuit
module Gate = Step_core.Gate
module Generators = Step_circuits.Generators
module Pipeline = Step_engine.Pipeline
module Config = Step_engine.Config
module Engine = Step_engine.Engine
module Clock = Step_obs.Clock
module Json = Step_obs.Json

let version = 1

(* Small enough that snapshot + clean re-run + handicapped run (the
   benchsmoke sequence) stays in CI-smoke territory, varied enough to
   exercise MG, the QBF models and all three gates. *)
let suite () =
  let planted ~seed ~na ~nb ~nc g =
    (Generators.planted_cone ~seed ~na ~nb ~nc g).Generators.circuit
  in
  [
    (planted ~seed:1 ~na:3 ~nb:3 ~nc:3 Gate.Or_gate, Gate.Or_gate);
    (planted ~seed:2 ~na:4 ~nb:4 ~nc:1 Gate.And_gate, Gate.And_gate);
    (planted ~seed:3 ~na:3 ~nb:3 ~nc:2 Gate.Xor_gate, Gate.Xor_gate);
    (Generators.ripple_adder 3, Gate.Xor_gate);
    (Generators.decoder 3, Gate.And_gate);
    (Generators.parity 5, Gate.Xor_gate);
  ]

let methods = [ Pipeline.Mg; Pipeline.Qd ]

let per_po_budget = 0.5

type row = {
  id : string;
  n_po : int;
  n_decomposed : int;
  n_failed : int;
  wall_s : float;
}

let row_id circuit gate method_ =
  Printf.sprintf "%s/%s/%s" circuit.Circuit.name
    (Pipeline.method_name method_)
    (Gate.to_string gate)

(* [handicap] repeats the engine run inside the timed region — an honest
   N-fold slowdown used by benchsmoke to prove the gate actually fires. *)
let run_suite ?(handicap = 1) () =
  List.concat_map
    (fun (circuit, gate) ->
      List.map
        (fun method_ ->
          let config =
            {
              Config.default with
              Config.gate;
              method_;
              per_po_budget;
            }
          in
          let t0 = Clock.now () in
          let result = ref None in
          for _ = 1 to max 1 handicap do
            result := Some (Engine.run (Engine.create ~config circuit))
          done;
          let wall_s = Clock.elapsed_since t0 in
          let r = Option.get !result in
          let n_failed =
            Array.fold_left
              (fun acc (po : Pipeline.po_result) ->
                if po.Pipeline.failure <> None && not po.Pipeline.degraded then
                  acc + 1
                else acc)
              0 r.Pipeline.per_po
          in
          {
            id = row_id circuit gate method_;
            n_po = Array.length r.Pipeline.per_po;
            n_decomposed = r.Pipeline.n_decomposed;
            n_failed;
            wall_s;
          })
        methods)
    (suite ())

(* ---------- snapshot I/O ---------- *)

let to_json rows =
  Json.Obj
    [
      ("version", Json.Int version);
      ("kind", Json.String "bench-baseline");
      ("suite", Json.String "planted");
      ("per_po_budget_s", Json.Float per_po_budget);
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("id", Json.String r.id);
                   ("n_po", Json.Int r.n_po);
                   ("n_decomposed", Json.Int r.n_decomposed);
                   ("n_failed", Json.Int r.n_failed);
                   ("wall_s", Json.Float r.wall_s);
                 ])
             rows) );
    ]

let save path rows =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "bench-" ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (Json.to_string (to_json rows));
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Printf.printf "wrote %s (%d rows)\n%!" path (List.length rows)

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let j = Json.of_string text in
  if Json.to_string_opt (Json.member "kind" j) <> Some "bench-baseline" then
    failwith (path ^ ": not a bench-baseline snapshot");
  if Json.to_int_opt (Json.member "version" j) <> Some version then
    failwith (path ^ ": snapshot from another format version");
  match Json.member "rows" j with
  | Json.List rows ->
      List.map
        (fun r ->
          let str k =
            match Json.to_string_opt (Json.member k r) with
            | Some s -> s
            | None -> failwith (path ^ ": row missing " ^ k)
          in
          let int k =
            match Json.to_int_opt (Json.member k r) with
            | Some i -> i
            | None -> failwith (path ^ ": row missing " ^ k)
          in
          let flt k =
            match Json.to_float_opt (Json.member k r) with
            | Some f -> f
            | None -> failwith (path ^ ": row missing " ^ k)
          in
          {
            id = str "id";
            n_po = int "n_po";
            n_decomposed = int "n_decomposed";
            n_failed = int "n_failed";
            wall_s = flt "wall_s";
          })
        rows
  | _ -> failwith (path ^ ": rows must be a list")

(* ---------- comparison ---------- *)

(* Sub-second rows are dominated by constant overheads, so the wall gate
   is [base * (1 + tolerance) + slack]. Quality gates are exact. *)
let wall_slack_s = 0.25

let compare_rows ~tolerance ~quality_only base cur =
  let cur_by_id = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace cur_by_id r.id r) cur;
  let violations = ref 0 in
  let violation fmt =
    incr violations;
    Printf.ksprintf (fun s -> Printf.printf "FAIL %s\n" s) fmt
  in
  List.iter
    (fun b ->
      match Hashtbl.find_opt cur_by_id b.id with
      | None -> violation "%s: row missing from current run" b.id
      | Some c ->
          let before = !violations in
          if c.n_po <> b.n_po then
            violation "%s: n_po %d, baseline %d (suite drifted?)" b.id c.n_po
              b.n_po;
          if c.n_decomposed < b.n_decomposed then
            violation "%s: decomposed %d/%d, baseline %d/%d" b.id
              c.n_decomposed c.n_po b.n_decomposed b.n_po;
          if c.n_failed > b.n_failed then
            violation "%s: %d failed outputs, baseline %d" b.id c.n_failed
              b.n_failed;
          let limit = (b.wall_s *. (1.0 +. tolerance)) +. wall_slack_s in
          if (not quality_only) && c.wall_s > limit then
            violation "%s: wall %.3fs > limit %.3fs (baseline %.3fs +%.0f%%)"
              b.id c.wall_s limit b.wall_s (100.0 *. tolerance);
          if !violations = before then
            Printf.printf "ok   %-28s dec=%d/%d wall %.3fs (baseline %.3fs)\n"
              b.id c.n_decomposed c.n_po c.wall_s b.wall_s)
    base;
  let total rows = List.fold_left (fun acc r -> acc +. r.wall_s) 0.0 rows in
  let base_total = total base and cur_total = total cur in
  let total_limit = (base_total *. (1.0 +. tolerance)) +. wall_slack_s in
  if (not quality_only) && cur_total > total_limit then
    violation "total wall %.3fs > limit %.3fs (baseline %.3fs)" cur_total
      total_limit base_total
  else
    Printf.printf "total wall %.3fs (baseline %.3fs, limit %.3fs%s)\n"
      cur_total base_total total_limit
      (if quality_only then ", not gated" else "");
  !violations

let check ~baseline_path ~tolerance ~quality_only ~handicap =
  let base = load baseline_path in
  let cur = run_suite ~handicap () in
  let n = compare_rows ~tolerance ~quality_only base cur in
  if n = 0 then begin
    Printf.printf "baseline %s: PASS (%d rows)\n" baseline_path
      (List.length base);
    0
  end
  else begin
    Printf.printf "baseline %s: FAIL (%d violations)\n" baseline_path n;
    1
  end
