(* Regeneration of every table and figure of the paper's evaluation
   (Section V), plus the ablations listed in DESIGN.md. Absolute numbers
   differ from the paper's 2011 testbed; the comparisons are the point. *)

module Circuit = Step_aig.Circuit
module Gate = Step_core.Gate
module Partition = Step_core.Partition
module Pipeline = Step_engine.Pipeline
module Problem = Step_core.Problem
module Copies = Step_core.Copies
module Mg = Step_core.Mg
module Qbf_model = Step_core.Qbf_model
module Extract = Step_core.Extract
module Verify = Step_core.Verify
module Aig = Step_aig.Aig

let hr = String.make 100 '-'

(* ---------- Table I ---------- *)

let table1 config =
  Printf.printf "%s\nTABLE I: quality of OR bi-decomposition, per circuit\n" hr;
  Printf.printf
    "(%% of POs decomposed by both tools where the QBF model is strictly \
     better / both equal)\n";
  Printf.printf
    "%-10s %4s %4s %4s | %28s | %28s\n" "Circuit" "#In" "#InM" "#Out"
    "vs LJH   QD        QB        QDB" "vs MG    QD        QB        QDB";
  let gate = Gate.Or_gate in
  List.iter
    (fun circuit ->
      let stats = Runs.stats_of circuit.Circuit.name in
      let n_in = stats.Runs.n_in in
      let inm = stats.Runs.inm in
      let n_out = stats.Runs.n_out in
      let ljh = Runs.run config circuit gate Pipeline.Ljh in
      let mg = Runs.run config circuit gate Pipeline.Mg in
      let qd = Runs.run config circuit gate Pipeline.Qd in
      let qb = Runs.run config circuit gate Pipeline.Qb in
      let qdb = Runs.run config circuit gate Pipeline.Qdb in
      let cell metric challenger baseline =
        let b, e, t = Runs.compare_metric metric challenger baseline in
        Printf.sprintf "%5.1f/%5.1f" (Runs.pct b t) (Runs.pct e t)
      in
      Printf.printf "%-10s %4d %4d %4d | %s %s %s | %s %s %s\n"
        circuit.Circuit.name n_in inm n_out
        (cell Runs.metric_disjointness qd ljh)
        (cell Runs.metric_balancedness qb ljh)
        (cell Runs.metric_sum qdb ljh)
        (cell Runs.metric_disjointness qd mg)
        (cell Runs.metric_balancedness qb mg)
        (cell Runs.metric_sum qdb mg))
    (Runs.circuits config)

(* ---------- Table II ---------- *)

let aggregate config gate challenger_m baseline_m metric =
  let better = ref 0 and equal = ref 0 and total = ref 0 in
  List.iter
    (fun circuit ->
      let c = Runs.run config circuit gate challenger_m in
      let b = Runs.run config circuit gate baseline_m in
      let bb, ee, tt = Runs.compare_metric metric c b in
      better := !better + bb;
      equal := !equal + ee;
      total := !total + tt)
    (Runs.circuits config);
  (Runs.pct !better !total, Runs.pct !equal !total)

let table2 config =
  Printf.printf "%s\nTABLE II: aggregate quality comparison, all models\n" hr;
  let row label gate baseline =
    let qd = aggregate config gate Pipeline.Qd baseline Runs.metric_disjointness in
    let qb = aggregate config gate Pipeline.Qb baseline Runs.metric_balancedness in
    let qdb = aggregate config gate Pipeline.Qdb baseline Runs.metric_sum in
    Printf.printf
      "%-16s QD better/equal: %5.1f%%/%5.1f%%   QB: %5.1f%%/%5.1f%%   QDB: \
       %5.1f%%/%5.1f%%\n"
      label (fst qd) (snd qd) (fst qb) (snd qb) (fst qdb) (snd qdb)
  in
  row "OR  vs LJH" Gate.Or_gate Pipeline.Ljh;
  row "OR  vs STEP-MG" Gate.Or_gate Pipeline.Mg;
  row "AND vs STEP-MG" Gate.And_gate Pipeline.Mg;
  row "XOR vs STEP-MG" Gate.Xor_gate Pipeline.Mg

(* ---------- Table III ---------- *)

let table3 config =
  Printf.printf "%s\nTABLE III: performance, OR bi-decomposition\n" hr;
  Printf.printf "%-10s | %-14s | %-14s | %-14s | %-14s | %-14s\n" "Circuit"
    "LJH #Dec/CPU" "MG #Dec/CPU" "QD #Dec/CPU" "QB #Dec/CPU" "QDB #Dec/CPU";
  let gate = Gate.Or_gate in
  List.iter
    (fun circuit ->
      let cell m =
        let r = Runs.run config circuit gate m in
        Printf.sprintf "%4d %8.2fs" r.Pipeline.n_decomposed
          r.Pipeline.total_cpu
      in
      Printf.printf "%-10s | %s | %s | %s | %s | %s\n" circuit.Circuit.name
        (cell Pipeline.Ljh) (cell Pipeline.Mg) (cell Pipeline.Qd)
        (cell Pipeline.Qb) (cell Pipeline.Qdb))
    (Runs.circuits config)

(* ---------- Table IV ---------- *)

let table4 config =
  Printf.printf
    "%s\nTABLE IV: %% of POs solved to optimality, OR bi-decomposition\n" hr;
  Printf.printf
    "(swept over per-output budgets; the paper's 4s-per-QBF-call limit on a \
     2011 Xeon\n corresponds to the tighter rows at this workload scale)\n";
  let gate = Gate.Or_gate in
  let budgets =
    if config.Runs.quick then [ 0.01; 0.1 ]
    else [ 0.005; 0.02; 0.1; config.Runs.per_po_budget ]
  in
  let solved_pct budget m =
    let total = ref 0 and solved = ref 0 in
    List.iter
      (fun circuit ->
        (* the configured-budget row reuses the shared cached runs; the
           tighter rows are cheap because every output is capped *)
        let r =
          if budget = config.Runs.per_po_budget then
            Runs.run config circuit gate m
          else Pipeline.run ~per_po_budget:budget circuit gate m
        in
        Array.iter
          (fun po ->
            incr total;
            (* solved = settled within budget: proven-optimal partition or
               definitive non-decomposability *)
            if
              po.Pipeline.proven_optimal
              || (po.Pipeline.partition = None && not po.Pipeline.timed_out)
            then incr solved)
          r.Pipeline.per_po)
      (Runs.circuits config);
    (!total, Runs.pct !solved !total)
  in
  Printf.printf "%-12s %10s %10s %10s\n" "budget/PO" "STEP-QD" "STEP-QB"
    "STEP-QDB";
  List.iter
    (fun budget ->
      let t, qd = solved_pct budget Pipeline.Qd in
      let _, qb = solved_pct budget Pipeline.Qb in
      let _, qdb = solved_pct budget Pipeline.Qdb in
      Printf.printf "%9.3fs %9.2f%% %9.2f%% %9.2f%%   (#Out=%d)\n" budget qd qb
        qdb t)
    budgets

(* ---------- Figure 1 ---------- *)

let figure1 config =
  Printf.printf
    "%s\nFIGURE 1: CPU time comparison between models (full %d-circuit suite)\n"
    hr
    (List.length (Step_circuits.Suite.full_suite ~scale:config.Runs.scale ()));
  let suite =
    let l = Step_circuits.Suite.full_suite ~scale:config.Runs.scale () in
    if config.Runs.quick then List.filteri (fun i _ -> i mod 10 = 0) l else l
  in
  let gate = Gate.Or_gate in
  (* the scatter compares run times across methods; a tighter per-output
     cap keeps the 145-circuit sweep fast without changing who is faster *)
  let fig_config =
    { config with Runs.per_po_budget = Float.min 0.3 config.Runs.per_po_budget }
  in
  let times m =
    List.map
      (fun c ->
        let r = Runs.run fig_config c gate m in
        (c.Circuit.name, Float.max 1e-4 r.Pipeline.total_cpu))
      suite
  in
  let ljh = times Pipeline.Ljh in
  let mg = times Pipeline.Mg in
  let qd = times Pipeline.Qd in
  let qb = times Pipeline.Qb in
  let qdb = times Pipeline.Qdb in
  let plot (xl, xs) (yl, ys) =
    let pts = List.map2 (fun (_, x) (_, y) -> (x, y)) xs ys in
    print_string
      (Scatter.render
         ~title:(Printf.sprintf "%s vs %s" xl yl)
         ~xlabel:xl ~ylabel:yl pts);
    let named = List.map2 (fun (n, x) (_, y) -> (n, x, y)) xs ys in
    let dir = "bench_out" in
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let file = Printf.sprintf "%s/fig1_%s_vs_%s.csv" dir xl yl in
    let oc = open_out file in
    output_string oc (Scatter.csv ~xlabel:xl ~ylabel:yl named);
    close_out oc;
    Printf.printf "  (CSV: %s)\n\n" file
  in
  List.iter
    (fun base ->
      List.iter (fun q -> plot q base) [ ("QD", qd); ("QB", qb); ("QDB", qdb) ])
    [ ("LJH", ljh); ("MG", mg) ]

(* ---------- Ablations ---------- *)

(* problems drawn from the first few suite circuits' decomposable POs *)
let sample_problems config gate limit =
  let rec collect circuits acc n =
    if n >= limit then List.rev acc
    else
      match circuits with
      | [] -> List.rev acc
      | c :: rest ->
          let mg = Runs.run config c gate Pipeline.Mg in
          let found = ref acc and count = ref n in
          Array.iter
            (fun po ->
              if !count < limit && po.Pipeline.partition <> None then begin
                let p =
                  Problem.of_edge c.Circuit.aig
                    (Circuit.find_output c po.Pipeline.po_name)
                in
                found := (p, Option.get po.Pipeline.partition) :: !found;
                incr count
              end)
            mg.Pipeline.per_po;
          collect rest !found !count
  in
  collect (Runs.circuits config) [] 0

let ablation_symmetry config =
  Printf.printf
    "%s\nABLATION A1: symmetry breaking |XA| >= |XB| in the QBF abstraction\n"
    hr;
  let problems = sample_problems config Gate.Or_gate 40 in
  let measure symmetry_breaking =
    let t0 = Unix.gettimeofday () in
    let refinements = ref 0 and queries = ref 0 in
    List.iter
      (fun (p, bootstrap) ->
        let o =
          Qbf_model.optimize ~symmetry_breaking ~bootstrap ~time_budget:1.0 p
            Gate.Or_gate Qbf_model.Disjointness
        in
        refinements := !refinements + o.Qbf_model.refinements;
        queries := !queries + o.Qbf_model.qbf_queries)
      problems;
    (Unix.gettimeofday () -. t0, !refinements, !queries)
  in
  let t_on, r_on, q_on = measure true in
  let t_off, r_off, q_off = measure false in
  Printf.printf
    "with symmetry breaking:    %.3fs  refinements=%d  queries=%d\n" t_on r_on
    q_on;
  Printf.printf
    "without symmetry breaking: %.3fs  refinements=%d  queries=%d\n" t_off
    r_off q_off;
  Printf.printf "(problems: %d decomposable POs)\n" (List.length problems)

let ablation_strategy config =
  Printf.printf
    "%s\nABLATION A2: optimum-search strategies (MI / MD / Bin / composite)\n"
    hr;
  let problems = sample_problems config Gate.Or_gate 40 in
  List.iter
    (fun (label, strategy, target) ->
      let t0 = Unix.gettimeofday () in
      let queries = ref 0 and refinements = ref 0 and optimal = ref 0 in
      List.iter
        (fun (p, bootstrap) ->
          let o =
            Qbf_model.optimize ~strategy ~bootstrap ~time_budget:1.0 p
              Gate.Or_gate target
          in
          queries := !queries + o.Qbf_model.qbf_queries;
          refinements := !refinements + o.Qbf_model.refinements;
          if o.Qbf_model.optimal then incr optimal)
        problems;
      Printf.printf
        "%-22s %.3fs  queries=%-5d refinements=%-5d optimal=%d/%d\n" label
        (Unix.gettimeofday () -. t0)
        !queries !refinements !optimal (List.length problems))
    [
      ("disjointness/MI", Qbf_model.Mi, Qbf_model.Disjointness);
      ("disjointness/MD", Qbf_model.Md, Qbf_model.Disjointness);
      ("disjointness/Bin", Qbf_model.Bin, Qbf_model.Disjointness);
      ("disjointness/Composite", Qbf_model.Composite, Qbf_model.Disjointness);
      ("balancedness/MI", Qbf_model.Mi, Qbf_model.Balancedness);
      ("balancedness/Composite", Qbf_model.Composite, Qbf_model.Balancedness);
    ]

let ablation_weights config =
  Printf.printf
    "%s\nABLATION A4: weighted cost functions (Definition 4, wd:wb sweep)\n" hr;
  let problems = sample_problems config Gate.Or_gate 30 in
  List.iter
    (fun (wd, wb) ->
      let t0 = Unix.gettimeofday () in
      let sum_d = ref 0 and sum_b = ref 0 and found = ref 0 in
      List.iter
        (fun (p, bootstrap) ->
          let o =
            Qbf_model.optimize ~bootstrap ~time_budget:1.0 p Gate.Or_gate
              (Qbf_model.Weighted { wd; wb })
          in
          match o.Qbf_model.partition with
          | Some part ->
              incr found;
              sum_d := !sum_d + Partition.disjointness_k part;
              sum_b := !sum_b + Partition.balancedness_k (Partition.canonical part)
          | None -> ())
        problems;
      Printf.printf
        "wd=%d wb=%d   total |XC|=%-4d total ||XA|-|XB||=%-4d  (%d POs, %.3fs)\n"
        wd wb !sum_d !sum_b !found
        (Unix.gettimeofday () -. t0))
    [ (1, 0); (4, 1); (1, 1); (1, 4); (0, 1) ];
  Printf.printf
    "(increasing wb shifts the optimum from disjoint toward balanced, as \
     Definition 4 intends)\n"

let ablation_bdd config =
  Printf.printf
    "%s\nABLATION A5: BDD-based vs SAT-based decomposability checks\n" hr;
  Printf.printf
    "(the paper's §III motivation: BDDs are exact but blow up with input \
     count)\n";
  ignore config;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let show = function
    | Some true -> "dec"
    | Some false -> "non"
    | None -> "BLOWUP"
  in
  let measure label p part =
    let sat_r, sat_t =
      time (fun () -> Step_core.Check.decomposable p Gate.Or_gate part)
    in
    let bdd_r, bdd_t =
      time (fun () ->
          Step_bdd.Bidec.decomposable ~max_nodes:500_000 p Gate.Or_gate part)
    in
    Printf.printf "%-12s SAT: %-4s %8.4fs    BDD: %-7s %8.4fs\n" label
      (show sat_r) sat_t (show bdd_r) bdd_t
  in
  (* the adder MSB under the adder's natural (non-interleaved) input order
     a0..an b0..bn: linear for SAT, exponential for the fixed-order BDD —
     the paper's "sensitive to variable orders" *)
  List.iter
    (fun n ->
      let c = Step_circuits.Generators.ripple_adder n in
      let p =
        Problem.of_edge c.Circuit.aig
          (Circuit.find_output c (Printf.sprintf "s%d" (n - 1)))
      in
      let half = List.filteri (fun i _ -> i < n) p.Problem.support in
      let rest =
        List.filter (fun v -> not (List.mem v half)) p.Problem.support
      in
      let part =
        Partition.make ~xa:half
          ~xb:(List.filteri (fun i _ -> i < 1) rest)
          ~xc:(List.filteri (fun i _ -> i >= 1) rest)
      in
      measure (Printf.sprintf "adder s%d" (n - 1)) p part)
    [ 8; 12; 16; 20; 24 ];
  (* the multiplier middle bit: exponential BDDs under every order *)
  List.iter
    (fun n ->
      let c = Step_circuits.Generators.multiplier n in
      let p =
        Problem.of_edge c.Circuit.aig
          (Circuit.find_output c (Printf.sprintf "p%d" (n - 1)))
      in
      let half = List.filteri (fun i _ -> i < n) p.Problem.support in
      let rest =
        List.filter (fun v -> not (List.mem v half)) p.Problem.support
      in
      let part =
        Partition.make ~xa:half
          ~xb:(List.filteri (fun i _ -> i < 1) rest)
          ~xc:(List.filteri (fun i _ -> i >= 1) rest)
      in
      measure (Printf.sprintf "mult p%d" (n - 1)) p part)
    [ 6; 8; 10; 12 ]

let ablation_depth config =
  Printf.printf
    "%s\nABLATION A6: balancedness vs network depth (the paper's delay claim)\n"
    hr;
  let problems = sample_problems config Gate.Or_gate 30 in
  let measure target =
    let depth_sum = ref 0 and bal_sum = ref 0 and found = ref 0 in
    List.iter
      (fun ((p : Problem.t), bootstrap) ->
        let o =
          Qbf_model.optimize ~bootstrap ~time_budget:1.0 p Gate.Or_gate target
        in
        match o.Qbf_model.partition with
        | None -> ()
        | Some part -> begin
            match Extract.run p Gate.Or_gate part with
            | e ->
                incr found;
                let aig = p.Problem.aig in
                let rebuilt = Aig.or_ aig e.Extract.fa e.Extract.fb in
                depth_sum := !depth_sum + Aig.depth aig rebuilt;
                bal_sum :=
                  !bal_sum + Partition.balancedness_k (Partition.canonical part)
            | exception Aig.Blowup -> ()
          end)
      problems;
    (!found, !depth_sum, !bal_sum)
  in
  let report label (found, depth_sum, bal_sum) =
    Printf.printf
      "%-10s mean rebuilt depth = %.2f   mean ||XA|-|XB|| = %.2f   (%d POs)\n"
      label
      (float_of_int depth_sum /. float_of_int (max 1 found))
      (float_of_int bal_sum /. float_of_int (max 1 found))
      found
  in
  report "STEP-QD" (measure Qbf_model.Disjointness);
  report "STEP-QB" (measure Qbf_model.Balancedness);
  Printf.printf
    "(lower balancedness should track lower depth of the decomposed network)\n"

let ablation_seed_order config =
  Printf.printf
    "%s\nABLATION A7: STEP-MG seed ordering (index spread vs simulation \
     signatures)\n" hr;
  let gate = Gate.Or_gate in
  let circuits = Runs.circuits config in
  let measure order =
    let t0 = Unix.gettimeofday () in
    let seeds = ref 0 and found = ref 0 and total = ref 0 in
    List.iter
      (fun c ->
        for i = 0 to Circuit.n_outputs c - 1 do
          let p = Problem.of_output c i in
          if Problem.n_vars p >= 2 then begin
            incr total;
            let r = Mg.find ~seed_order:order ~time_budget:1.0 p gate in
            seeds := !seeds + r.Mg.seeds_tried;
            if r.Mg.partition <> None then incr found
          end
        done)
      circuits;
    (Unix.gettimeofday () -. t0, !seeds, !found, !total)
  in
  let report label (t, seeds, found, total) =
    Printf.printf "%-10s %.3fs  seeds tried=%-5d decomposed=%d/%d\n" label t
      seeds found total
  in
  report "spread" (measure Mg.Spread);
  report "signature" (measure Mg.Signature)

let ablation_extract config =
  Printf.printf
    "%s\nABLATION A3: extraction engines (quantification vs interpolation)\n" hr;
  let problems = sample_problems config Gate.Or_gate 25 in
  List.iter
    (fun (label, engine, post) ->
      let t0 = Unix.gettimeofday () in
      let nodes = ref 0 and verified = ref 0 in
      List.iter
        (fun ((p : Problem.t), part) ->
          match Extract.run ~engine p Gate.Or_gate part with
          | r ->
              let aig = p.Problem.aig in
              let fa = post aig r.Extract.fa and fb = post aig r.Extract.fb in
              nodes := !nodes + Aig.cone_size aig fa + Aig.cone_size aig fb;
              if Verify.decomposition p Gate.Or_gate part ~fa ~fb then
                incr verified
          | exception Aig.Blowup -> ())
        problems;
      Printf.printf "%-22s %.3fs  total fA/fB AND-nodes=%-6d verified=%d/%d\n"
        label
        (Unix.gettimeofday () -. t0)
        !nodes !verified (List.length problems))
    [
      ("quantify", Extract.Quantify, fun _ e -> e);
      ("interpolate", Extract.Interpolate, fun _ e -> e);
      ( "interpolate+simplify",
        Extract.Interpolate,
        fun aig e ->
          Step_aig.Rewrite.balance aig (Step_aig.Rewrite.simplify_fixpoint aig e)
      );
    ]
